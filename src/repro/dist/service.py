"""The worker-side service: command dispatch shared by every runtime.

Historically the pipe runtime's ``_worker_main`` owned this logic; the
socket runtime needs the identical behavior behind a TCP server, so it
lives here once.  A :class:`WorkerService` starts *unconfigured* — a
socket worker can be launched as a bare listener (``repro worker``) and
receive its identity over the wire via ``__configure__`` — and
reconfiguration is a logical respawn: the old tracer shard is finished
and a fresh :class:`~repro.dist.worker.Worker` is built at the next
incarnation.

``dispatch`` mirrors the original pipe protocol exactly: every response
is ``("ok", (result, telemetry))`` or ``("exc", (name, message,
traceback))``, with the telemetry tuple piggybacking the worker's
resource counters so proxies track memory peaks without extra round
trips.  When streaming telemetry is enabled the tuple grows a seventh
element — an interval-gated :mod:`repro.obs.telemetry` frame (or
``None``) — which proxies forward to the controller's collector.
"""

from __future__ import annotations

import os
import traceback
from typing import Any, Dict, Optional, Tuple

from ..obs.tracer import NULL_TRACER, Tracer
from ..obs.telemetry import TelemetrySource
from .resources import WorkerResources
from .storage import RouteStore
from .worker import Worker


class WorkerService:
    """Executes worker commands; transport-agnostic.

    One instance serves one worker process for its whole lifetime,
    across reconfigurations (incarnations).
    """

    def __init__(self) -> None:
        self.worker: Optional[Worker] = None
        self.resources: Optional[WorkerResources] = None
        self.tracer = NULL_TRACER
        self.incarnation = -1
        self.telemetry: Optional[TelemetrySource] = None
        self._snapshot = None
        self._stores: Dict[str, RouteStore] = {}

    @property
    def configured(self) -> bool:
        return self.worker is not None

    def configure(
        self,
        worker_id: int,
        snapshot,
        assignment: Dict[str, int],
        capacity: int,
        cost_model,
        max_hops: int,
        trace_dir: Optional[str] = None,
        incarnation: int = 0,
        telemetry_interval: float = 0.0,
    ) -> None:
        """(Re)build the worker; a reconfigure is a logical respawn."""
        if self.tracer is not NULL_TRACER:
            self.tracer.finish()
        self.resources = WorkerResources(
            name=f"worker{worker_id}", capacity=capacity, model=cost_model
        )
        self.tracer = NULL_TRACER
        if trace_dir:
            # Each (worker, lifetime) gets its own shard file; the merge
            # layer folds all incarnations onto one process track.
            self.tracer = Tracer(
                process=f"worker{worker_id}",
                sink=os.path.join(
                    trace_dir, f"worker{worker_id}.{incarnation}.jsonl"
                ),
                incarnation=incarnation,
            )
        self.worker = Worker(
            worker_id=worker_id,
            snapshot=snapshot,
            assignment=assignment,
            resources=self.resources,
            max_hops=max_hops,
            tracer=self.tracer,
        )
        self._snapshot = snapshot
        self.incarnation = incarnation
        # Streaming telemetry: interval-gated, sequence numbers scoped
        # per incarnation so the collector sees a respawn as a fresh
        # stream rather than a seq regression.
        self.telemetry = (
            TelemetrySource(
                self.worker,
                interval=telemetry_interval,
                incarnation=incarnation,
            )
            if telemetry_interval > 0
            else None
        )
        self._stores.clear()

    def _store_for(self, directory: str) -> RouteStore:
        if directory not in self._stores:
            self._stores[directory] = RouteStore(directory)
        return self._stores[directory]

    def dispatch(
        self, command: str, args: tuple, flow_id: Optional[int] = None
    ) -> Tuple[str, Any]:
        """Execute one command; never raises — failures are relayed."""
        try:
            if self.worker is None:
                raise RuntimeError(
                    f"worker service is not configured (got {command!r} "
                    "before __configure__)"
                )
            worker = self.worker
            with self.tracer.span(
                f"handle.{command}",
                category="rpc",
                flow_id=flow_id,
                flow="in" if flow_id is not None else None,
            ):
                if command == "flush_shard":
                    directory, shard_index = args
                    shard_routes = worker.finish_shard()
                    written = self._store_for(directory).write_shard(
                        worker.worker_id, shard_index, shard_routes
                    )
                    selected = sum(
                        len(routes)
                        for node_routes in shard_routes.values()
                        for routes in node_routes.values()
                    )
                    result = (written, selected)
                elif command == "build_dataplane":
                    directory, encoding, node_limit, bdd_kernel = args
                    from ..dataplane.fib import NextHopResolver

                    resolver = NextHopResolver.from_snapshot(self._snapshot)
                    result = worker.build_dataplane(
                        self._store_for(directory),
                        resolver,
                        encoding,
                        node_limit,
                        bdd_kernel,
                    )
                elif command == "merged_routes":
                    (directory,) = args
                    result = self._store_for(directory).merged_routes(
                        worker.worker_id
                    )
                elif command == "pending_packets":
                    result = worker.pending_packets
                elif command == "rebind_snapshot":
                    # The service keeps its own snapshot reference for
                    # the data-plane resolver; a rebind must move both.
                    result = worker.rebind_snapshot(*args)
                    self._snapshot = args[0]
                else:
                    result = getattr(worker, command)(*args)
            resources = self.resources
            # PullOutcome travels fine; attach fresh memory telemetry so
            # the proxy mirror can track the peak without extra round
            # trips.  The optional seventh element is an interval-gated
            # streaming frame for the controller's collector.
            frame = (
                self.telemetry.maybe_frame(phase=command)
                if self.telemetry is not None
                else None
            )
            telemetry = (
                resources.current_bytes,
                resources.peak_bytes,
                resources.candidate_routes,
                resources.bdd_nodes,
                resources.fib_entries,
                resources.oom,
                frame,
            )
            return "ok", (result, telemetry)
        except Exception as exc:  # noqa: BLE001 — relayed to the controller
            return "exc", (
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
            )

    def finish(self) -> None:
        if self.tracer is not NULL_TRACER:
            self.tracer.finish()
            self.tracer = NULL_TRACER
