"""The control plane orchestrator (CPO, §4.2).

Schedules protocols in sequence (IGPs before BGP), and for BGP runs the
distributed fixed point once per prefix shard: each round every worker
computes its nodes' exports (phase A), the sidecars ship the boundary
advertisements (measured bytes), and every worker's nodes pull and merge
(phase B).  The round repeats until *all* workers report no change —
Algorithm 1 with the pull relays batched per worker pair.

When a shard converges, its routes are flushed to the
:class:`~repro.dist.storage.RouteStore` and the in-memory RIBs are freed,
which is exactly what bounds the per-worker peak at one shard (§4.5).

Fault tolerance rides on shard idempotency: ``begin_shard`` fully resets
per-shard state, so when a :class:`~repro.dist.faults.WorkerFailure`
surfaces mid-fixed-point the CPO asks the supervisor to recover the
worker (respawn/reset + OSPF checkpoint replay) and simply replays the
whole shard from round 0 — bit-identical to the fault-free run.  Dropped
sidecar batches are healed by the rounds themselves (exports are resent
in full every round); the only hazard is a drop in the would-be-final
round, so the CPO refuses to declare convergence in any round where the
fault plan dropped a batch.  A :class:`~repro.dist.storage.RunManifest`
records converged shards, letting :meth:`run` skip them on resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer, stopwatch
from ..routing.engine import ConvergenceError
from .faults import FaultPlan, RetryPolicy, WorkerFailure
from .runtime import Runtime, SequentialRuntime
from .sharding import PrefixShard
from .sidecar import Sidecar
from .storage import RouteStore, RunManifest
from .worker import PullOutcome, Worker


@dataclass
class ControlPlaneStats:
    bgp_rounds: int = 0
    ospf_rounds: int = 0
    shards_run: int = 0
    shards_merged: int = 0  # §7 refinement: shards absorbed into reruns
    modeled_wall_time: float = 0.0
    measured_seconds: float = 0.0
    route_flush_bytes: int = 0
    peak_candidate_routes: int = 0  # summed over workers, any instant
    total_selected_routes: int = 0
    # -- fault tolerance -------------------------------------------------
    worker_failures: int = 0        # WorkerFailures seen during BGP/OSPF
    shard_replays: int = 0          # shards rerun after a recovery
    ospf_replays: int = 0           # OSPF fixed points rerun after recovery
    forced_rounds: int = 0          # extra rounds forced by dropped batches
    shards_skipped: int = 0         # shards skipped on resume (manifest)
    ospf_restored: bool = False     # OSPF came from a checkpoint, not rounds
    heartbeat_probes: int = 0
    sequential_fallback: bool = False  # degraded to the monolithic engine
    batches_dropped: int = 0        # injected at the sidecars
    batches_duplicated: int = 0     # injected at the sidecars
    duplicates_discarded: int = 0   # receiver-side sequence dedup hits
    pipelined_deliveries: int = 0   # coalesced in-flight sends per round
    workers_lost: int = 0           # respawn budget spent; left the fleet
    shards_reassigned: int = 0      # shard files migrated to survivors


class ControlPlaneOrchestrator:
    def __init__(
        self,
        workers: Sequence[Worker],
        sidecars: Sequence[Sidecar],
        store: RouteStore,
        runtime: Optional[Runtime] = None,
        max_rounds: int = 200,
        fault_plan: Optional[FaultPlan] = None,
        supervisor=None,
        retry_policy: Optional[RetryPolicy] = None,
        manifest: Optional[RunManifest] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.workers = list(workers)
        self.sidecars = list(sidecars)
        self.store = store
        self.runtime = runtime or SequentialRuntime()
        self.max_rounds = max_rounds
        self.fault_plan = fault_plan
        self.supervisor = supervisor
        self.retry_policy = retry_policy or RetryPolicy()
        self.manifest = manifest
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics
        self.stats = ControlPlaneStats()
        # Epoch fence (serving mode): when set, every begin_shard carries
        # it and a worker at any other epoch refuses the shard, which
        # surfaces as a WorkerFailure and routes through recovery.
        self.epoch: Optional[int] = None

    # -- fleet membership ----------------------------------------------------

    def drop_worker(self, worker_id: int) -> None:
        """Remove a lost worker from the round loop (loss migration).

        The caller replays the interrupted shard afterwards; every
        round's thunks are built fresh from ``self.workers``, so the
        shrunken fleet takes effect at the next phase.
        """
        self.workers = [w for w in self.workers if w.worker_id != worker_id]
        self.sidecars = [
            s for s in self.sidecars if s.worker_id != worker_id
        ]

    def set_fleet(
        self, workers: Sequence[Worker], sidecars: Sequence[Sidecar]
    ) -> None:
        """Rebind the active fleet (a healed worker rejoined)."""
        self.workers = list(workers)
        self.sidecars = list(sidecars)

    # -- helpers ------------------------------------------------------------

    def _modeled_barrier(self, deltas: List[float]) -> None:
        """Advance the modeled wall clock by the slowest worker's phase."""
        if deltas:
            self.stats.modeled_wall_time += max(deltas)

    def _recover(self, failure: WorkerFailure) -> None:
        """Hand a worker failure to the supervisor (or give up)."""
        self.stats.worker_failures += 1
        if self.supervisor is None:
            raise failure
        self.supervisor.recover(failure)

    def _heartbeat(self) -> None:
        """Probe worker liveness; a dead worker surfaces as WorkerFailure."""
        self.stats.heartbeat_probes += 1
        for worker in self.workers:
            answer = worker.ping()
            if answer not in ("pong", True):
                raise WorkerFailure(
                    f"worker {worker.worker_id} failed its heartbeat "
                    f"(answered {answer!r})",
                    worker_id=worker.worker_id,
                    command="ping",
                )

    def _exchange(self, batch_maps) -> int:
        """Ship one round's boundary batches, pipelined.

        Every sender's batches are queued first, then all outboxes flush
        before any delivery is awaited — remote deliveries for the whole
        round are in flight together instead of call-and-wait one batch
        at a time.  Settling every handle before returning is the
        delivery barrier phase B's pulls depend on.
        """
        sent = 0
        for sidecar, batches in zip(self.sidecars, batch_maps):
            for batch in batches.values():
                sidecar.queue_routes(batch)
                sent += 1
        handles = []
        for sidecar in self.sidecars:
            handles.extend(sidecar.flush_routes())
        for handle in handles:
            handle.result()
        self.stats.pipelined_deliveries += len(handles)
        return sent

    def _collect_fault_telemetry(self) -> None:
        """Fold sidecar and worker fault counters into the stats."""
        self.stats.batches_dropped = sum(
            s.batches_dropped for s in self.sidecars
        )
        self.stats.batches_duplicated = sum(
            s.batches_duplicated for s in self.sidecars
        )
        try:
            self.stats.duplicates_discarded = sum(
                worker.fault_counters().get("duplicate_batches", 0)
                for worker in self.workers
            )
        except WorkerFailure:
            pass  # telemetry must never fail a finished run

    # -- OSPF phase -----------------------------------------------------------

    def run_ospf(self) -> None:
        """The IGP fixed point, with shard-style failure recovery.

        On a worker failure the recovered worker rejoins with an empty
        IGP state and the whole loop reruns: distance-vector convergence
        is monotone from any mixed state, so the fixed point (and hence
        the installed routes) is identical to the fault-free run.
        """
        attempts = 0
        while True:
            try:
                self._run_ospf_once()
                return
            except WorkerFailure as failure:
                attempts += 1
                if attempts > self.retry_policy.max_shard_retries:
                    raise
                self._recover(failure)
                self.stats.ospf_replays += 1

    def _run_ospf_once(self) -> None:
        if not any(worker.has_ospf() for worker in self.workers):
            return
        if self.fault_plan is not None:
            self.fault_plan.set_context(round_token=-1)
        with self.tracer.span("cpo.ospf", category="cpo") as ospf_span:
            for _round in range(self.max_rounds):
                with self.tracer.span(
                    "cpo.ospf_round", category="cpo", round=_round
                ):
                    batch_maps = self.runtime.map(
                        [w.compute_ospf_exports for w in self.workers]
                    )
                    self._exchange(batch_maps)
                    changed_flags = self.runtime.map(
                        [w.pull_ospf_round for w in self.workers]
                    )
                self.stats.ospf_rounds += 1
                if self.metrics is not None:
                    self.metrics.counter("cpo.ospf_rounds").inc()
                dropped = (
                    self.fault_plan.consume_drops()
                    if self.fault_plan is not None
                    else 0
                )
                if not any(changed_flags):
                    if dropped == 0:
                        break
                    self.stats.forced_rounds += 1
            else:
                raise ConvergenceError(
                    f"OSPF did not converge within {self.max_rounds} rounds",
                    rounds=self.max_rounds,
                )
            ospf_span.set(rounds=self.stats.ospf_rounds)
            self.runtime.map(
                [w.install_ospf_routes for w in self.workers]
            )

    # -- BGP phase ------------------------------------------------------------------

    def run_bgp_shard(self, shard: Optional[PrefixShard]) -> None:
        """Converge one shard and flush it, replaying after recoveries.

        A shard is the recovery unit: ``begin_shard`` (at the top of the
        fixed point) fully resets per-shard state on every worker, so a
        replay after respawning the failed worker reproduces the same
        RIBs the fault-free run would have flushed.
        """
        attempts = 0
        while True:
            try:
                self._converge_shard(shard)
                self._flush_shard(shard.index if shard is not None else 0)
                return
            except WorkerFailure as failure:
                attempts += 1
                if attempts > self.retry_policy.max_shard_retries:
                    raise
                self._recover(failure)
                self.stats.shard_replays += 1

    def _converge_shard(self, shard: Optional[PrefixShard]) -> None:
        shard_index = shard.index if shard is not None else 0
        if self.fault_plan is not None:
            self.fault_plan.set_context(shard=shard_index)
        for worker in self.workers:
            worker.begin_shard(shard, self.epoch)
        heartbeat_every = self.retry_policy.heartbeat_interval_rounds
        last_outcomes = []
        with self.tracer.span(
            "cpo.shard", category="cpo", shard=shard_index
        ) as shard_span:
            try:
                self._converge_shard_rounds(
                    shard, shard_index, heartbeat_every, last_outcomes
                )
            finally:
                shard_span.set(rounds=self.stats.bgp_rounds)

    def _converge_shard_rounds(
        self,
        shard: Optional[PrefixShard],
        shard_index: int,
        heartbeat_every: int,
        last_outcomes: List[PullOutcome],
    ) -> None:
        for round_token in range(self.max_rounds):
            if self.fault_plan is not None:
                self.fault_plan.set_context(round_token=round_token)
            clocks_before = [w.resources.modeled_time for w in self.workers]
            with self.tracer.span(
                "cpo.round", category="cpo", shard=shard_index,
                round=round_token,
            ):
                # Phase A: snapshot exports, batch the boundary ones.
                with self.tracer.span("cpo.exports", category="cpo"):
                    batch_maps = self.runtime.map(
                        [
                            (lambda w=w: w.compute_exports(round_token))
                            for w in self.workers
                        ]
                    )
                with self.tracer.span("cpo.exchange", category="cpo") as ex:
                    sent = self._exchange(batch_maps)
                    ex.set(batches=sent)
                # Phase B: pull and merge.
                with self.tracer.span("cpo.pull", category="cpo"):
                    outcomes = self.runtime.map(
                        [
                            (lambda w=w: w.pull_round(round_token))
                            for w in self.workers
                        ]
                    )
            del last_outcomes[:]
            last_outcomes.extend(outcomes)
            candidate_total = 0
            for worker, outcome in zip(self.workers, outcomes):
                worker.update_memory()
                worker.resources.charge_route_round(outcome.updates_processed)
                candidate_total += outcome.candidate_routes
            self.stats.peak_candidate_routes = max(
                self.stats.peak_candidate_routes, candidate_total
            )
            if self.metrics is not None:
                self.metrics.counter("cpo.bgp_rounds").inc()
                self.metrics.gauge("cpo.candidate_routes").set(
                    candidate_total
                )
            # The round ends at a barrier: the slowest worker (route work
            # plus its share of RPC) bounds the modeled wall clock.
            self._modeled_barrier(
                [
                    w.resources.modeled_time - before
                    for w, before in zip(self.workers, clocks_before)
                ]
            )
            self.stats.bgp_rounds += 1
            dropped = (
                self.fault_plan.consume_drops()
                if self.fault_plan is not None
                else 0
            )
            if not any(outcome.changed for outcome in outcomes):
                if dropped == 0:
                    break
                # A batch was dropped this round: a "no change" verdict
                # may rest on a stale mailbox.  Exports are re-sent in
                # full every round, so one extra round heals the state.
                self.stats.forced_rounds += 1
            if heartbeat_every and (round_token + 1) % heartbeat_every == 0:
                self._heartbeat()
        else:
            still_changing = {
                worker.worker_id: list(outcome.changed_nodes)
                for worker, outcome in zip(self.workers, last_outcomes)
                if outcome.changed
            }
            raise ConvergenceError(
                f"BGP did not converge within {self.max_rounds} rounds",
                shard_index=shard.index if shard is not None else 0,
                rounds=self.max_rounds,
                still_changing=still_changing,
            )

    def _flush_shard(self, flush_index: int) -> None:
        """Flush the converged shard to persistent storage, freeing RIBs."""
        with self.tracer.span(
            "cpo.flush", category="cpo", shard=flush_index
        ) as span:
            results = self.runtime.map(
                [
                    (lambda w=w: w.flush_shard(self.store, flush_index))
                    for w in self.workers
                ]
            )
            flush_deltas = []
            flushed_bytes = 0
            for worker, (written, selected) in zip(self.workers, results):
                self.stats.route_flush_bytes += written
                flushed_bytes += written
                self.stats.total_selected_routes += selected
                flush_deltas.append(worker.resources.charge_shard_overhead())
            span.set(bytes=flushed_bytes)
        if self.metrics is not None:
            self.metrics.counter("cpo.flush_bytes").inc(flushed_bytes)
        self._modeled_barrier(flush_deltas)
        self.stats.shards_run += 1

    # -- checkpoint/resume ----------------------------------------------------

    def _checkpoint_ospf(self) -> None:
        """Record the IGP result for respawn replay (and resume)."""
        if self.supervisor is not None:
            self.supervisor.checkpoint_ospf()
        if self.manifest is not None:
            self.manifest.ospf_done = True
            self.store.write_manifest(self.manifest)

    def _mark_shard_done(self, flush_index: int, rounds: int) -> None:
        if self.manifest is None:
            return
        self.manifest.mark_shard(flush_index, rounds=rounds)
        self.store.write_manifest(self.manifest)

    # -- §7 extension: runtime dependency refinement --------------------------

    def _collect_observed_dependencies(self) -> set:
        found: set = set()
        for deps in self.runtime.map(
            [w.observed_dependencies for w in self.workers]
        ):
            found |= deps
        return found

    def run_bgp_refining(self, shards: Sequence[PrefixShard]) -> None:
        """Run shards with runtime dependency refinement (§7).

        After a shard converges, workers report any prefix dependency
        they observed pointing *outside* the shard (an unforeseen
        dependency the DPDG missed).  The affected shards are merged and
        the union recomputed; since flush indices grow monotonically, a
        recomputation simply supersedes earlier results for its prefixes.

        (Refinement reshapes the shard list as it runs, so refined runs
        are not resumable: the manifest's flush indices would not line
        up across a restart.  Worker recovery still applies.)
        """
        pending: List[PrefixShard] = list(shards)
        flush_index = 0
        while pending:
            shard = pending.pop(0)
            attempts = 0
            while True:
                try:
                    self._converge_shard(shard)
                    break
                except WorkerFailure as failure:
                    attempts += 1
                    if attempts > self.retry_policy.max_shard_retries:
                        raise
                    self._recover(failure)
                    self.stats.shard_replays += 1
            unmet = {
                watch
                for _prefix, watch in self._collect_observed_dependencies()
                if watch not in shard
            }
            if unmet:
                absorbed = [
                    other
                    for other in pending
                    if other.prefixes & unmet
                ]
                merged_prefixes = set(shard.prefixes)
                for other in absorbed:
                    pending.remove(other)
                    merged_prefixes |= other.prefixes
                # Watches held by *already flushed* shards simply join the
                # merged shard: the recomputation's higher flush index
                # supersedes their earlier results for those prefixes.
                merged_prefixes |= unmet
                self.stats.shards_merged += 1 + len(absorbed)
                pending.insert(
                    0,
                    PrefixShard(
                        index=shard.index,
                        prefixes=frozenset(merged_prefixes),
                    ),
                )
                continue
            self._flush_shard(flush_index)
            flush_index += 1

    def run(
        self,
        shards: Optional[Sequence[PrefixShard]] = None,
        refine: bool = False,
    ) -> ControlPlaneStats:
        """IGPs first, then BGP over every shard (None = single pass).

        With a manifest attached (persistent store), OSPF is restored
        from its checkpoint when already done, converged shards are
        skipped, and every newly converged shard is recorded — the
        substrate of :meth:`~repro.dist.controller.S2Controller.resume`.
        """
        with stopwatch() as clock, self.tracer.span(
            "cpo.run", category="cpo"
        ) as span:
            if (
                self.manifest is not None
                and self.manifest.ospf_done
                and self.supervisor is not None
                and self.supervisor.restore_ospf()
            ):
                self.stats.ospf_restored = True
            else:
                self.run_ospf()
                self._checkpoint_ospf()
            if shards and refine:
                self.run_bgp_refining(shards)
            elif shards:
                for shard in shards:
                    if (
                        self.manifest is not None
                        and self.manifest.is_shard_done(shard.index)
                    ):
                        self.stats.shards_skipped += 1
                        continue
                    rounds_before = self.stats.bgp_rounds
                    self.run_bgp_shard(shard)
                    self._mark_shard_done(
                        shard.index, self.stats.bgp_rounds - rounds_before
                    )
            else:
                if self.manifest is not None and self.manifest.is_shard_done(
                    0
                ):
                    self.stats.shards_skipped += 1
                else:
                    rounds_before = self.stats.bgp_rounds
                    self.run_bgp_shard(None)
                    self._mark_shard_done(
                        0, self.stats.bgp_rounds - rounds_before
                    )
            self._collect_fault_telemetry()
            span.set(
                bgp_rounds=self.stats.bgp_rounds,
                shards=self.stats.shards_run,
            )
        self.stats.measured_seconds = clock.seconds
        return self.stats
