"""The control plane orchestrator (CPO, §4.2).

Schedules protocols in sequence (IGPs before BGP), and for BGP runs the
distributed fixed point once per prefix shard: each round every worker
computes its nodes' exports (phase A), the sidecars ship the boundary
advertisements (measured bytes), and every worker's nodes pull and merge
(phase B).  The round repeats until *all* workers report no change —
Algorithm 1 with the pull relays batched per worker pair.

When a shard converges, its routes are flushed to the
:class:`~repro.dist.storage.RouteStore` and the in-memory RIBs are freed,
which is exactly what bounds the per-worker peak at one shard (§4.5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..routing.engine import ConvergenceError
from .runtime import Runtime, SequentialRuntime
from .sharding import PrefixShard
from .sidecar import Sidecar
from .storage import RouteStore
from .worker import Worker


@dataclass
class ControlPlaneStats:
    bgp_rounds: int = 0
    ospf_rounds: int = 0
    shards_run: int = 0
    shards_merged: int = 0  # §7 refinement: shards absorbed into reruns
    modeled_wall_time: float = 0.0
    measured_seconds: float = 0.0
    route_flush_bytes: int = 0
    peak_candidate_routes: int = 0  # summed over workers, any instant
    total_selected_routes: int = 0


class ControlPlaneOrchestrator:
    def __init__(
        self,
        workers: Sequence[Worker],
        sidecars: Sequence[Sidecar],
        store: RouteStore,
        runtime: Optional[Runtime] = None,
        max_rounds: int = 200,
    ) -> None:
        self.workers = list(workers)
        self.sidecars = list(sidecars)
        self.store = store
        self.runtime = runtime or SequentialRuntime()
        self.max_rounds = max_rounds
        self.stats = ControlPlaneStats()

    # -- helpers ------------------------------------------------------------

    def _modeled_barrier(self, deltas: List[float]) -> None:
        """Advance the modeled wall clock by the slowest worker's phase."""
        if deltas:
            self.stats.modeled_wall_time += max(deltas)

    # -- OSPF phase -----------------------------------------------------------

    def run_ospf(self) -> None:
        if not any(worker.has_ospf() for worker in self.workers):
            return
        for _round in range(self.max_rounds):
            batch_maps = self.runtime.map(
                [w.compute_ospf_exports for w in self.workers]
            )
            for sidecar, batches in zip(self.sidecars, batch_maps):
                for batch in batches.values():
                    sidecar.send_routes(batch)
            changed_flags = self.runtime.map(
                [w.pull_ospf_round for w in self.workers]
            )
            self.stats.ospf_rounds += 1
            if not any(changed_flags):
                break
        else:
            raise ConvergenceError(
                f"OSPF did not converge within {self.max_rounds} rounds"
            )
        self.runtime.map(
            [w.install_ospf_routes for w in self.workers]
        )

    # -- BGP phase ------------------------------------------------------------------

    def run_bgp_shard(self, shard: Optional[PrefixShard]) -> None:
        """Converge one shard and flush it (the non-refining path)."""
        self._converge_shard(shard)
        self._flush_shard(shard.index if shard is not None else 0)

    def _converge_shard(self, shard: Optional[PrefixShard]) -> None:
        for worker in self.workers:
            worker.begin_shard(shard)
        for round_token in range(self.max_rounds):
            clocks_before = [w.resources.modeled_time for w in self.workers]
            # Phase A: snapshot exports, batch the boundary ones.
            batch_maps = self.runtime.map(
                [
                    (lambda w=w: w.compute_exports(round_token))
                    for w in self.workers
                ]
            )
            for sidecar, batches in zip(self.sidecars, batch_maps):
                for batch in batches.values():
                    sidecar.send_routes(batch)
            # Phase B: pull and merge.
            outcomes = self.runtime.map(
                [
                    (lambda w=w: w.pull_round(round_token))
                    for w in self.workers
                ]
            )
            candidate_total = 0
            for worker, outcome in zip(self.workers, outcomes):
                worker.update_memory()
                worker.resources.charge_route_round(outcome.updates_processed)
                candidate_total += outcome.candidate_routes
            self.stats.peak_candidate_routes = max(
                self.stats.peak_candidate_routes, candidate_total
            )
            # The round ends at a barrier: the slowest worker (route work
            # plus its share of RPC) bounds the modeled wall clock.
            self._modeled_barrier(
                [
                    w.resources.modeled_time - before
                    for w, before in zip(self.workers, clocks_before)
                ]
            )
            self.stats.bgp_rounds += 1
            if not any(outcome.changed for outcome in outcomes):
                break
        else:
            raise ConvergenceError(
                f"BGP did not converge within {self.max_rounds} rounds"
            )

    def _flush_shard(self, flush_index: int) -> None:
        """Flush the converged shard to persistent storage, freeing RIBs."""
        results = self.runtime.map(
            [
                (lambda w=w: w.flush_shard(self.store, flush_index))
                for w in self.workers
            ]
        )
        flush_deltas = []
        for worker, (written, selected) in zip(self.workers, results):
            self.stats.route_flush_bytes += written
            self.stats.total_selected_routes += selected
            flush_deltas.append(worker.resources.charge_shard_overhead())
        self._modeled_barrier(flush_deltas)
        self.stats.shards_run += 1

    # -- §7 extension: runtime dependency refinement --------------------------

    def _collect_observed_dependencies(self) -> set:
        found: set = set()
        for deps in self.runtime.map(
            [w.observed_dependencies for w in self.workers]
        ):
            found |= deps
        return found

    def run_bgp_refining(self, shards: Sequence[PrefixShard]) -> None:
        """Run shards with runtime dependency refinement (§7).

        After a shard converges, workers report any prefix dependency
        they observed pointing *outside* the shard (an unforeseen
        dependency the DPDG missed).  The affected shards are merged and
        the union recomputed; since flush indices grow monotonically, a
        recomputation simply supersedes earlier results for its prefixes.
        """
        pending: List[PrefixShard] = list(shards)
        flush_index = 0
        while pending:
            shard = pending.pop(0)
            self._converge_shard(shard)
            unmet = {
                watch
                for _prefix, watch in self._collect_observed_dependencies()
                if watch not in shard
            }
            if unmet:
                absorbed = [
                    other
                    for other in pending
                    if other.prefixes & unmet
                ]
                merged_prefixes = set(shard.prefixes)
                for other in absorbed:
                    pending.remove(other)
                    merged_prefixes |= other.prefixes
                # Watches held by *already flushed* shards simply join the
                # merged shard: the recomputation's higher flush index
                # supersedes their earlier results for those prefixes.
                merged_prefixes |= unmet
                self.stats.shards_merged += 1 + len(absorbed)
                pending.insert(
                    0,
                    PrefixShard(
                        index=shard.index,
                        prefixes=frozenset(merged_prefixes),
                    ),
                )
                continue
            self._flush_shard(flush_index)
            flush_index += 1

    def run(
        self,
        shards: Optional[Sequence[PrefixShard]] = None,
        refine: bool = False,
    ) -> ControlPlaneStats:
        """IGPs first, then BGP over every shard (None = single pass)."""
        started = time.perf_counter()
        self.run_ospf()
        if shards and refine:
            self.run_bgp_refining(shards)
        elif shards:
            for shard in shards:
                self.run_bgp_shard(shard)
        else:
            self.run_bgp_shard(None)
        self.stats.measured_seconds = time.perf_counter() - started
        return self.stats
