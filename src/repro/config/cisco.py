"""Parser for the Cisco-IOS-like configuration dialect.

This is one of the two vendor frontends (the other is
:mod:`repro.config.juniper`).  It covers the feature set the paper's DCN
relies on: eBGP with per-neighbor route maps, ``network`` statements,
``aggregate-address`` with ``summary-only`` and attribute maps, conditional
advertisement, prefix/community/as-path lists, extended ACLs, OSPF with
``network ... area`` statements, static routes (including ``Null0``), and
the ``remove-private-as`` VSB.
"""

from __future__ import annotations

from typing import List, Optional

from ..net.ip import Prefix, parse_ip
from .ast import (
    Acl,
    AclLine,
    Action,
    Aggregate,
    AsPathList,
    AsPathListLine,
    BgpConfig,
    BgpNeighbor,
    CommunityList,
    CommunityListLine,
    ConditionalAdvertisement,
    DeviceConfig,
    InterfaceConfig,
    MatchAsPathList,
    MatchCommunityList,
    MatchPrefixList,
    Origin,
    OspfConfig,
    OspfInterfaceConfig,
    PrefixList,
    PrefixListLine,
    RemovePrivateAsMode,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetAsPathReplace,
    SetCommunities,
    SetDeleteCommunities,
    SetLocalPref,
    SetMed,
    SetNextHop,
    SetOrigin,
    SetTag,
    SetWeight,
    StaticRoute,
    VendorBehavior,
    parse_community,
)
from .lexer import ConfigSyntaxError, Line, split_lines

CISCOISH_BEHAVIOR = VendorBehavior(
    vendor="ciscoish",
    # This vendor strips only the leading private ASNs (§2.1 VSB).
    remove_private_as_mode=RemovePrivateAsMode.LEADING,
)


def _action(word: str, line: Line) -> Action:
    if word == "permit":
        return Action.PERMIT
    if word == "deny":
        return Action.DENY
    raise ConfigSyntaxError(f"expected permit/deny, got {word}", line.number, line.raw)


class CiscoParser:
    """Single-pass, line-oriented parser building a :class:`DeviceConfig`."""

    def __init__(self, text: str) -> None:
        self._lines = split_lines(text)
        self._index = 0
        self._config = DeviceConfig(hostname="", behavior=CISCOISH_BEHAVIOR)
        # OSPF `network` statements are resolved against interfaces after
        # the whole file is read.
        self._ospf_networks: List[tuple] = []

    # -- cursor helpers -----------------------------------------------------

    def _peek(self) -> Optional[Line]:
        if self._index < len(self._lines):
            return self._lines[self._index]
        return None

    def _next(self) -> Line:
        line = self._lines[self._index]
        self._index += 1
        return line

    def _block(self, parent_indent: int) -> List[Line]:
        """Consume and return the indented block following the current line."""
        block: List[Line] = []
        while True:
            line = self._peek()
            if line is None or line.indent <= parent_indent:
                break
            block.append(self._next())
        return block

    # -- top level ------------------------------------------------------------

    def parse(self) -> DeviceConfig:
        while (line := self._peek()) is not None:
            head = line.first
            if head == "hostname":
                self._next()
                self._config.hostname = line.words[1]
            elif head == "interface":
                self._parse_interface(self._next())
            elif head == "router":
                self._parse_router(self._next())
            elif head == "ip":
                self._parse_ip_statement(self._next())
            elif head == "route-map":
                self._parse_route_map(self._next())
            else:
                raise ConfigSyntaxError(
                    f"unrecognized statement {head!r}", line.number, line.raw
                )
        if not self._config.hostname:
            raise ConfigSyntaxError("missing hostname")
        self._resolve_ospf_networks()
        return self._config

    # -- interfaces -------------------------------------------------------------

    def _parse_interface(self, header: Line) -> None:
        name = header.words[1]
        interface = InterfaceConfig(name=name)
        ospf_cost: Optional[int] = None
        for line in self._block(header.indent):
            words = line.words
            if words[:2] == ["ip", "address"]:
                interface.address = parse_ip(words[2])
                prefix = Prefix.from_ip_mask(words[2], words[3])
                interface.prefix = prefix
            elif words[:2] == ["ip", "access-group"]:
                if words[3] == "in":
                    interface.acl_in = words[2]
                elif words[3] == "out":
                    interface.acl_out = words[2]
                else:
                    raise ConfigSyntaxError(
                        "access-group direction must be in/out",
                        line.number,
                        line.raw,
                    )
            elif words[:3] == ["ip", "ospf", "cost"]:
                ospf_cost = int(words[3])
            elif words == ["shutdown"]:
                interface.shutdown = True
            elif words[0] == "description":
                interface.description = " ".join(words[1:])
            else:
                raise ConfigSyntaxError(
                    f"unrecognized interface statement {words[0]!r}",
                    line.number,
                    line.raw,
                )
        self._config.interfaces[name] = interface
        if ospf_cost is not None:
            ospf = self._ensure_ospf()
            ospf.interfaces.setdefault(name, OspfInterfaceConfig()).cost = (
                ospf_cost
            )

    # -- routers --------------------------------------------------------------

    def _ensure_ospf(self) -> OspfConfig:
        if self._config.ospf is None:
            self._config.ospf = OspfConfig()
        return self._config.ospf

    def _parse_router(self, header: Line) -> None:
        kind = header.words[1]
        if kind == "bgp":
            self._parse_bgp(header)
        elif kind == "ospf":
            self._parse_ospf(header)
        else:
            raise ConfigSyntaxError(
                f"unsupported routing process {kind!r}", header.number, header.raw
            )

    def _parse_bgp(self, header: Line) -> None:
        bgp = BgpConfig(asn=int(header.words[2]))
        neighbors: dict = {}
        for line in self._block(header.indent):
            words = line.words
            if words[:2] == ["bgp", "router-id"]:
                bgp.router_id = parse_ip(words[2])
            elif words[0] == "maximum-paths":
                bgp.maximum_paths = int(words[1])
            elif words[0] == "neighbor":
                peer_ip = parse_ip(words[1])
                neighbor = neighbors.get(peer_ip)
                if neighbor is None:
                    neighbor = BgpNeighbor(peer_ip=peer_ip, remote_as=0)
                    neighbors[peer_ip] = neighbor
                self._parse_neighbor_line(neighbor, words[2:], line)
            elif words[0] == "network":
                if len(words) >= 4 and words[2] == "mask":
                    bgp.networks.append(Prefix.from_ip_mask(words[1], words[3]))
                else:
                    bgp.networks.append(Prefix.parse(words[1]))
            elif words[0] == "aggregate-address":
                # v4 spelling: `aggregate-address A.B.C.D M.M.M.M ...`;
                # slash spelling (used for IPv6): `aggregate-address P/L ...`
                if "/" in words[1]:
                    prefix = Prefix.parse(words[1])
                    rest = words[2:]
                else:
                    prefix = Prefix.from_ip_mask(words[1], words[2])
                    rest = words[3:]
                summary_only = "summary-only" in rest
                attribute_map = None
                if "attribute-map" in rest:
                    attribute_map = rest[rest.index("attribute-map") + 1]
                bgp.aggregates.append(
                    Aggregate(
                        prefix=prefix,
                        summary_only=summary_only,
                        attribute_map=attribute_map,
                    )
                )
            elif words[0] == "redistribute":
                bgp.redistribute.append(words[1])
            elif words[0] == "advertise":
                # Dialect shorthand for conditional advertisement:
                #   advertise <prefix> exist <prefix>
                #   advertise <prefix> non-exist <prefix>
                bgp.conditionals.append(
                    ConditionalAdvertisement(
                        prefix=Prefix.parse(words[1]),
                        watch_prefix=Prefix.parse(words[3]),
                        when_present=(words[2] == "exist"),
                    )
                )
            else:
                raise ConfigSyntaxError(
                    f"unrecognized bgp statement {words[0]!r}",
                    line.number,
                    line.raw,
                )
        bgp.neighbors = list(neighbors.values())
        for neighbor in bgp.neighbors:
            if neighbor.remote_as == 0:
                raise ConfigSyntaxError(
                    f"neighbor {neighbor.peer_ip} has no remote-as",
                    header.number,
                    header.raw,
                )
        self._config.bgp = bgp

    @staticmethod
    def _parse_neighbor_line(
        neighbor: BgpNeighbor, words: List[str], line: Line
    ) -> None:
        if words[0] == "remote-as":
            neighbor.remote_as = int(words[1])
        elif words[0] == "route-map":
            if words[2] == "in":
                neighbor.import_policy = words[1]
            elif words[2] == "out":
                neighbor.export_policy = words[1]
            else:
                raise ConfigSyntaxError(
                    "route-map direction must be in/out", line.number, line.raw
                )
        elif words[0] == "remove-private-as":
            neighbor.remove_private_as = True
        elif words[0] == "description":
            neighbor.description = " ".join(words[1:])
        else:
            raise ConfigSyntaxError(
                f"unrecognized neighbor statement {words[0]!r}",
                line.number,
                line.raw,
            )

    def _parse_ospf(self, header: Line) -> None:
        ospf = self._ensure_ospf()
        ospf.process_id = int(header.words[2])
        for line in self._block(header.indent):
            words = line.words
            if words[0] == "router-id":
                ospf.router_id = parse_ip(words[1])
            elif words[0] == "network" and words[3] == "area":
                # network <addr> <wildcard> area <n>
                addr = parse_ip(words[1])
                wildcard = parse_ip(words[2])
                self._ospf_networks.append((addr, wildcard, int(words[4])))
            elif words[0] == "passive-interface":
                ospf.interfaces.setdefault(
                    words[1], OspfInterfaceConfig()
                ).passive = True
            elif words[0] == "redistribute":
                ospf.redistribute.append(words[1])
            else:
                raise ConfigSyntaxError(
                    f"unrecognized ospf statement {words[0]!r}",
                    line.number,
                    line.raw,
                )

    def _resolve_ospf_networks(self) -> None:
        """Map OSPF ``network`` statements onto configured interfaces."""
        if not self._ospf_networks:
            return
        ospf = self._ensure_ospf()
        for addr, wildcard, area in self._ospf_networks:
            mask = (~wildcard) & 0xFFFFFFFF
            for interface in self._config.interfaces.values():
                if interface.address is None:
                    continue
                if (interface.address & mask) == (addr & mask):
                    entry = ospf.interfaces.setdefault(
                        interface.name, OspfInterfaceConfig()
                    )
                    entry.area = area

    # -- global ip statements ----------------------------------------------------

    def _parse_ip_statement(self, line: Line) -> None:
        words = line.words
        if words[1] == "route":
            self._parse_static_route(words, line)
        elif words[1] == "prefix-list":
            self._parse_prefix_list(words, line)
        elif words[1] == "community-list":
            self._parse_community_list(words, line)
        elif words[1] == "as-path":
            self._parse_as_path_list(words, line)
        elif words[1] == "access-list":
            self._parse_acl(line)
        else:
            raise ConfigSyntaxError(
                f"unrecognized ip statement {words[1]!r}", line.number, line.raw
            )

    def _parse_static_route(self, words: List[str], line: Line) -> None:
        prefix = Prefix.from_ip_mask(words[2], words[3])
        target = words[4]
        tag = 0
        if "tag" in words:
            tag = int(words[words.index("tag") + 1])
        if target.lower() == "null0":
            route = StaticRoute(prefix=prefix, discard=True, tag=tag)
        elif target[0].isdigit():
            route = StaticRoute(prefix=prefix, next_hop=parse_ip(target), tag=tag)
        else:
            route = StaticRoute(prefix=prefix, interface=target, tag=tag)
        self._config.static_routes.append(route)

    def _parse_prefix_list(self, words: List[str], line: Line) -> None:
        # ip prefix-list NAME seq N permit|deny PREFIX [ge N] [le N]
        name = words[2]
        if words[3] != "seq":
            raise ConfigSyntaxError("expected seq", line.number, line.raw)
        seq = int(words[4])
        action = _action(words[5], line)
        prefix = Prefix.parse(words[6])
        ge = le = None
        rest = words[7:]
        if "ge" in rest:
            ge = int(rest[rest.index("ge") + 1])
        if "le" in rest:
            le = int(rest[rest.index("le") + 1])
        plist = self._config.prefix_lists.setdefault(name, PrefixList(name))
        plist.lines.append(PrefixListLine(seq, action, prefix, ge, le))

    def _parse_community_list(self, words: List[str], line: Line) -> None:
        # ip community-list standard NAME permit|deny C1 [C2 ...]
        if words[2] != "standard":
            raise ConfigSyntaxError(
                "only standard community-lists supported", line.number, line.raw
            )
        name = words[3]
        action = _action(words[4], line)
        communities = tuple(parse_community(w) for w in words[5:])
        clist = self._config.community_lists.setdefault(
            name, CommunityList(name)
        )
        clist.lines.append(CommunityListLine(action, communities))

    def _parse_as_path_list(self, words: List[str], line: Line) -> None:
        # ip as-path access-list NAME permit|deny REGEX
        if words[2] != "access-list":
            raise ConfigSyntaxError("expected access-list", line.number, line.raw)
        name = words[3]
        action = _action(words[4], line)
        regex = " ".join(words[5:])
        alist = self._config.as_path_lists.setdefault(name, AsPathList(name))
        alist.lines.append(AsPathListLine(action, regex))

    def _parse_acl(self, header: Line) -> None:
        # ip access-list extended NAME, then indented numbered lines.
        words = header.words
        if words[2] != "extended":
            raise ConfigSyntaxError(
                "only extended ACLs supported", header.number, header.raw
            )
        acl = self._config.acls.setdefault(words[3], Acl(words[3]))
        for line in self._block(header.indent):
            acl.lines.append(self._parse_acl_line(line))

    @staticmethod
    def _parse_acl_line(line: Line) -> AclLine:
        # <seq> permit|deny <proto|ip> <src|any> [eq P | range A B]
        #                               <dst|any> [eq P | range A B]
        # Port specifiers follow the address they constrain, as in IOS:
        # the one after the source is the source-port match.
        words = line.words
        seq = int(words[0])
        action = _action(words[1], line)
        proto_word = words[2]
        protocol = None
        if proto_word != "ip":
            protocol = {"tcp": 6, "udp": 17, "icmp": 1}.get(proto_word)
            if protocol is None:
                protocol = int(proto_word)

        def parse_side(word: str) -> Optional[Prefix]:
            if word == "any":
                return None
            return Prefix.parse(word)

        def parse_ports(rest: List[str]):
            if rest[:1] == ["eq"]:
                port = int(rest[1])
                return (port, port), rest[2:]
            if rest[:1] == ["range"]:
                return (int(rest[1]), int(rest[2])), rest[3:]
            return None, rest

        src = parse_side(words[3])
        src_port, rest = parse_ports(words[4:])
        dst = parse_side(rest[0])
        dst_port, rest = parse_ports(rest[1:])
        return AclLine(
            seq=seq,
            action=action,
            src=src,
            dst=dst,
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
        )

    # -- route maps ---------------------------------------------------------------

    def _parse_route_map(self, header: Line) -> None:
        # route-map NAME permit|deny SEQ
        words = header.words
        name = words[1]
        action = _action(words[2], header)
        seq = int(words[3])
        clause = RouteMapClause(seq=seq, action=action)
        for line in self._block(header.indent):
            lwords = line.words
            if lwords[0] == "match":
                clause.matches.append(self._parse_match(lwords, line))
            elif lwords[0] == "set":
                clause.sets.append(self._parse_set(lwords, line))
            else:
                raise ConfigSyntaxError(
                    f"unrecognized route-map statement {lwords[0]!r}",
                    line.number,
                    line.raw,
                )
        route_map = self._config.route_maps.setdefault(name, RouteMap(name))
        route_map.clauses.append(clause)

    @staticmethod
    def _parse_match(words: List[str], line: Line):
        if words[1:4] == ["ip", "address", "prefix-list"]:
            return MatchPrefixList(words[4])
        if words[1] == "community":
            return MatchCommunityList(words[2])
        if words[1] == "as-path":
            return MatchAsPathList(words[2])
        raise ConfigSyntaxError(
            f"unrecognized match {' '.join(words[1:])!r}", line.number, line.raw
        )

    @staticmethod
    def _parse_set(words: List[str], line: Line):
        if words[1] == "local-preference":
            return SetLocalPref(int(words[2]))
        if words[1] in ("metric", "med"):
            return SetMed(int(words[2]))
        if words[1] == "weight":
            return SetWeight(int(words[2]))
        if words[1] == "origin":
            return SetOrigin(Origin[words[2].upper()])
        if words[1] == "community":
            rest = words[2:]
            additive = rest and rest[-1] == "additive"
            if additive:
                rest = rest[:-1]
            return SetCommunities(
                tuple(parse_community(w) for w in rest), additive=bool(additive)
            )
        if words[1] == "comm-list" and words[3] == "delete":
            return SetDeleteCommunities(words[2])
        if words[1] == "as-path" and words[2] == "prepend":
            return SetAsPathPrepend(tuple(int(w) for w in words[3:]))
        if words[1] == "as-path" and words[2] == "replace":
            # `set as-path replace any` — the AS_PATH overwrite policy.
            return SetAsPathReplace()
        if words[1:3] == ["ip", "next-hop"]:
            return SetNextHop(parse_ip(words[3]))
        if words[1] == "tag":
            return SetTag(int(words[2]))
        raise ConfigSyntaxError(
            f"unrecognized set {' '.join(words[1:])!r}", line.number, line.raw
        )


def parse_cisco(text: str) -> DeviceConfig:
    """Parse Cisco-like configuration text into a :class:`DeviceConfig`."""
    return CiscoParser(text).parse()
