"""Configuration substrate: vendor parsers and the vendor-independent model."""

from .ast import (  # noqa: F401
    Acl,
    AclLine,
    Action,
    Aggregate,
    AsPathList,
    BgpConfig,
    BgpNeighbor,
    CommunityList,
    ConditionalAdvertisement,
    DeviceConfig,
    InterfaceConfig,
    OspfConfig,
    PrefixList,
    RemovePrivateAsMode,
    RouteMap,
    StaticRoute,
    VendorBehavior,
    community,
    format_community,
    parse_community,
)
from .arista import parse_arista  # noqa: F401
from .cisco import parse_cisco  # noqa: F401
from .juniper import parse_juniper  # noqa: F401
from .lexer import ConfigSyntaxError  # noqa: F401
from .loader import (  # noqa: F401
    Snapshot,
    derive_topology,
    load_snapshot_dir,
    make_snapshot,
    parse_device,
    sniff_dialect,
    write_snapshot_dir,
)
from .policy import PolicyEngine, PolicyError, apply_remove_private_as  # noqa: F401
