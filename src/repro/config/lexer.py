"""Tokenization helpers shared by the vendor config parsers.

The Cisco-like dialect is line-oriented with significant leading whitespace;
the Juniper-like dialect is brace-structured.  Both parsers start from the
same primitive: a stream of :class:`Line` records with indentation, or a
stream of word/punctuation tokens for the brace grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


class ConfigSyntaxError(ValueError):
    """Raised with file/line context when a config cannot be parsed."""

    def __init__(self, message: str, line_no: int = 0, line: str = "") -> None:
        context = f" at line {line_no}: {line.strip()!r}" if line_no else ""
        super().__init__(f"{message}{context}")
        self.line_no = line_no
        self.line = line


@dataclass(frozen=True)
class Line:
    """One non-empty, non-comment config line."""

    number: int
    indent: int
    words: List[str]
    raw: str

    @property
    def first(self) -> str:
        return self.words[0]


def split_lines(text: str) -> List[Line]:
    """Split config text into :class:`Line` records.

    Blank lines and comment lines (``!`` or ``#``) are dropped; indentation
    is measured in spaces (tabs count as one).
    """
    lines: List[Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith(("!", "#")):
            continue
        indent = len(raw) - len(raw.lstrip())
        lines.append(Line(number, indent, stripped.split(), raw))
    return lines


def tokenize_braces(text: str) -> Iterator[tuple]:
    """Tokenize brace-structured (Juniper-like) text.

    Yields ``(token, line_no)`` where token is a word, ``{``, ``}``, ``;``,
    ``[`` or ``]``.  Comments run from ``#`` to end of line.
    """
    for line_no, raw in enumerate(text.splitlines(), start=1):
        code = raw.split("#", 1)[0]
        buffer = ""
        for char in code:
            if char in "{};[]":
                if buffer:
                    yield buffer, line_no
                    buffer = ""
                yield char, line_no
            elif char.isspace():
                if buffer:
                    yield buffer, line_no
                    buffer = ""
            else:
                buffer += char
        if buffer:
            yield buffer, line_no
