"""Snapshot loading: a directory of vendor configs → a parsed network.

A *snapshot* mirrors Batfish's layout: a ``configs/`` directory with one
file per device.  The loader detects the dialect per file (Cisco-like
``.cfg`` line syntax vs Juniper-like ``.conf`` braces — or by sniffing the
content), parses each into a :class:`~repro.config.ast.DeviceConfig`, and
derives the layer-3 topology from interface subnets.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..net.ip import Prefix
from ..net.topology import Interface, InterfaceRef, Topology, TopologyNode
from .arista import parse_arista
from .ast import DeviceConfig
from .cisco import parse_cisco
from .juniper import parse_juniper
from .lexer import ConfigSyntaxError


@dataclass
class Snapshot:
    """A parsed network: device configs plus the derived L3 topology."""

    configs: Dict[str, DeviceConfig]
    topology: Topology
    name: str = "snapshot"
    metadata: Dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.configs)

    def validate(self) -> Dict[str, List[str]]:
        """Per-device referential problems; empty dict means clean."""
        problems = {}
        for hostname, config in self.configs.items():
            found = config.validate()
            if found:
                problems[hostname] = found
        return problems


_JUNIPER_SECTIONS = (
    "system",
    "interfaces",
    "protocols",
    "routing-options",
    "policy-options",
    "firewall",
)


def sniff_dialect(text: str) -> str:
    """Guess the dialect of a config file from its first code line."""
    for raw in text.splitlines():
        stripped = raw.strip()
        if not stripped or stripped.startswith(("!", "#")):
            continue
        first = stripped.split()[0]
        return "juniperish" if first in _JUNIPER_SECTIONS else "ciscoish"
    return "ciscoish"


def parse_device(text: str, dialect: Optional[str] = None) -> DeviceConfig:
    """Parse one device config, auto-detecting the dialect if not given."""
    if dialect is None:
        dialect = sniff_dialect(text)
    if dialect == "ciscoish":
        return parse_cisco(text)
    if dialect == "juniperish":
        return parse_juniper(text)
    if dialect == "aristaish":
        return parse_arista(text)
    raise ConfigSyntaxError(f"unknown dialect {dialect!r}")


def derive_topology(configs: Dict[str, DeviceConfig]) -> Topology:
    """Infer the L3 topology: interfaces sharing a subnet are linked.

    Point-to-point subnets (/31, /30) produce one link; anything broader is
    treated as a LAN and linked pairwise (rare in DCNs, but parsed
    snapshots may contain them).
    """
    topology = Topology()
    # subnet -> [(node, iface-name, address)]
    subnets: Dict[Prefix, List[Tuple[str, str, int]]] = {}
    for hostname, config in configs.items():
        node = TopologyNode(name=hostname)
        for iface in config.interfaces.values():
            if iface.shutdown or iface.address is None or iface.prefix is None:
                continue
            node.add_interface(
                Interface(iface.name, iface.address, iface.prefix)
            )
            subnets.setdefault(iface.prefix, []).append(
                (hostname, iface.name, iface.address)
            )
        topology.add_node(node)
    for prefix, members in subnets.items():
        if len(members) < 2:
            continue
        # Pairwise links; for /31 and /30 this is exactly one link.
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a_host, a_iface, _ = members[i]
                b_host, b_iface, _ = members[j]
                if a_host == b_host:
                    continue
                topology.add_link(
                    InterfaceRef(a_host, a_iface),
                    InterfaceRef(b_host, b_iface),
                )
    return topology


def load_snapshot_dir(path: str, name: Optional[str] = None) -> Snapshot:
    """Load a snapshot directory (``<path>/configs/*.cfg|*.conf``)."""
    configs_dir = os.path.join(path, "configs")
    if not os.path.isdir(configs_dir):
        configs_dir = path
    configs: Dict[str, DeviceConfig] = {}
    for entry in sorted(os.listdir(configs_dir)):
        full = os.path.join(configs_dir, entry)
        if not os.path.isfile(full):
            continue
        dialect: Optional[str] = None
        if entry.endswith(".cfg"):
            dialect = "ciscoish"
        elif entry.endswith(".conf"):
            dialect = "juniperish"
        elif entry.endswith(".eos"):
            dialect = "aristaish"
        elif not entry.endswith((".txt",)):
            continue
        with open(full, "r", encoding="utf-8") as handle:
            text = handle.read()
        config = parse_device(text, dialect)
        if config.hostname in configs:
            raise ConfigSyntaxError(
                f"duplicate hostname {config.hostname} in {entry}"
            )
        configs[config.hostname] = config
    return make_snapshot(configs, name=name or os.path.basename(path))


def make_snapshot(
    configs: Dict[str, DeviceConfig],
    topology: Optional[Topology] = None,
    name: str = "snapshot",
) -> Snapshot:
    """Build a snapshot from parsed configs, deriving topology if needed."""
    if topology is None:
        topology = derive_topology(configs)
    return Snapshot(configs=configs, topology=topology, name=name)


def snapshot_from_texts(
    texts: Dict[str, Tuple[str, str]], name: str = "snapshot"
) -> Snapshot:
    """Parse rendered config texts straight into a snapshot.

    ``texts`` maps hostname -> (dialect, text), the same shape the
    synthesizers and the fuzzer emit, so generated networks exercise the
    real vendor parsers without a filesystem round-trip.
    """
    configs: Dict[str, DeviceConfig] = {}
    for hostname, (dialect, text) in texts.items():
        config = parse_device(text, dialect)
        if config.hostname != hostname:
            raise ConfigSyntaxError(
                f"rendered hostname {config.hostname!r} does not match "
                f"key {hostname!r}"
            )
        configs[config.hostname] = config
    return make_snapshot(configs, name=name)


def write_snapshot_dir(
    path: str, texts: Dict[str, Tuple[str, str]]
) -> None:
    """Write config texts to a snapshot directory.

    ``texts`` maps hostname -> (dialect, text).  Used by the synthesizers
    so generated networks take the same file-based path as real ones.
    """
    suffixes = {"ciscoish": ".cfg", "juniperish": ".conf", "aristaish": ".eos"}
    configs_dir = os.path.join(path, "configs")
    os.makedirs(configs_dir, exist_ok=True)
    for hostname, (dialect, text) in texts.items():
        suffix = suffixes.get(dialect, ".cfg")
        with open(
            os.path.join(configs_dir, hostname + suffix),
            "w",
            encoding="utf-8",
        ) as handle:
            handle.write(text)
