"""Vendor-independent (VI) configuration model.

The parsers in :mod:`repro.config.cisco` and :mod:`repro.config.juniper`
translate vendor text into these dataclasses; everything downstream (the
routing models, the partitioner, the verifiers) consumes only this layer,
mirroring Batfish's vendor-independent representation.

Vendor-specific behaviours (VSBs) that survive normalization — e.g. the two
industry interpretations of ``remove-private-AS`` — are captured explicitly
in :class:`VendorBehavior` so the switch model can reproduce them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.ip import Prefix

# Private ASNs per RFC 6996 (16-bit range; we model 16-bit ASNs).
PRIVATE_AS_MIN = 64512
PRIVATE_AS_MAX = 65534


def is_private_as(asn: int) -> bool:
    return PRIVATE_AS_MIN <= asn <= PRIVATE_AS_MAX


def community(asn: int, value: int) -> int:
    """Encode an ``asn:value`` community as a 32-bit integer."""
    return ((asn & 0xFFFF) << 16) | (value & 0xFFFF)


def format_community(value: int) -> str:
    return f"{(value >> 16) & 0xFFFF}:{value & 0xFFFF}"


def parse_community(text: str) -> int:
    asn_text, _, value_text = text.partition(":")
    return community(int(asn_text), int(value_text))


class Action(enum.Enum):
    """Permit/deny action shared by ACLs, prefix lists, and route maps."""

    PERMIT = "permit"
    DENY = "deny"


class Origin(enum.IntEnum):
    """BGP origin attribute; lower is preferred."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class RemovePrivateAsMode(enum.Enum):
    """The two observed vendor interpretations of ``remove-private-AS``.

    ``ALL`` strips every private ASN from the AS path; ``LEADING`` strips
    only the private ASNs preceding the first non-private one (§2.1).
    """

    ALL = "all"
    LEADING = "leading"


@dataclass(frozen=True)
class VendorBehavior:
    """The VSB profile attached to a device by its parser."""

    vendor: str = "generic"
    remove_private_as_mode: RemovePrivateAsMode = RemovePrivateAsMode.ALL
    default_local_pref: int = 100
    default_max_paths: int = 1


# -- policy structures ----------------------------------------------------


@dataclass(frozen=True)
class PrefixListLine:
    """One ``ip prefix-list`` entry: action + prefix + optional ge/le."""

    seq: int
    action: Action
    prefix: Prefix
    ge: Optional[int] = None
    le: Optional[int] = None

    def matches(self, candidate: Prefix) -> bool:
        if not self.prefix.contains(candidate):
            return False
        low = self.ge if self.ge is not None else self.prefix.length
        high = self.le if self.le is not None else (
            self.ge if self.ge is not None else self.prefix.length
        )
        if self.le is not None:
            high = self.le
        elif self.ge is not None:
            high = 32
        return low <= candidate.length <= high


@dataclass
class PrefixList:
    name: str
    lines: List[PrefixListLine] = field(default_factory=list)

    def permits(self, candidate: Prefix) -> bool:
        """First-match semantics with an implicit deny at the end."""
        for line in sorted(self.lines, key=lambda l: l.seq):
            if line.matches(candidate):
                return line.action is Action.PERMIT
        return False


@dataclass(frozen=True)
class CommunityListLine:
    action: Action
    communities: Tuple[int, ...]

    def matches(self, present: frozenset) -> bool:
        """A standard community-list line matches when all its values are present."""
        return all(value in present for value in self.communities)


@dataclass
class CommunityList:
    name: str
    lines: List[CommunityListLine] = field(default_factory=list)

    def permits(self, present: frozenset) -> bool:
        for line in self.lines:
            if line.matches(present):
                return line.action is Action.PERMIT
        return False


@dataclass(frozen=True)
class AsPathListLine:
    action: Action
    regex: str


@dataclass
class AsPathList:
    name: str
    lines: List[AsPathListLine] = field(default_factory=list)


# -- route-map match clauses ----------------------------------------------


@dataclass(frozen=True)
class MatchPrefixList:
    name: str


@dataclass(frozen=True)
class MatchCommunityList:
    name: str


@dataclass(frozen=True)
class MatchAsPathList:
    name: str


@dataclass(frozen=True)
class MatchTag:
    tag: int


MatchClause = object  # any of the Match* dataclasses


# -- route-map set clauses --------------------------------------------------


@dataclass(frozen=True)
class SetLocalPref:
    value: int


@dataclass(frozen=True)
class SetMed:
    value: int


@dataclass(frozen=True)
class SetOrigin:
    value: Origin


@dataclass(frozen=True)
class SetWeight:
    value: int


@dataclass(frozen=True)
class SetCommunities:
    """Set (replace) or add communities; ``additive`` keeps existing ones."""

    communities: Tuple[int, ...]
    additive: bool = False


@dataclass(frozen=True)
class SetDeleteCommunities:
    """Delete the communities matched by a community list."""

    community_list: str


@dataclass(frozen=True)
class SetAsPathPrepend:
    asns: Tuple[int, ...]


@dataclass(frozen=True)
class SetAsPathReplace:
    """AS_PATH overwrite (§2.3): replace the whole path with the own ASN.

    Used by the DCN operators to prevent route drops caused by repeated
    layer ASNs.  ``asn=None`` means "the configuring device's own ASN".
    """

    asn: Optional[int] = None


@dataclass(frozen=True)
class SetNextHop:
    address: int


@dataclass(frozen=True)
class SetTag:
    tag: int


SetClause = object  # any of the Set* dataclasses


@dataclass
class RouteMapClause:
    """One sequenced term of a route map.

    All matches must hold for the clause to fire (standard conjunctive
    semantics); an empty match list matches everything.
    """

    seq: int
    action: Action
    matches: List[MatchClause] = field(default_factory=list)
    sets: List[SetClause] = field(default_factory=list)


@dataclass
class RouteMap:
    name: str
    clauses: List[RouteMapClause] = field(default_factory=list)

    def sorted_clauses(self) -> List[RouteMapClause]:
        return sorted(self.clauses, key=lambda c: c.seq)


# -- ACLs -------------------------------------------------------------------


@dataclass(frozen=True)
class AclLine:
    """One packet-filter line over the 5-tuple (any field may be wildcard)."""

    seq: int
    action: Action
    src: Optional[Prefix] = None
    dst: Optional[Prefix] = None
    protocol: Optional[int] = None
    src_port: Optional[Tuple[int, int]] = None  # inclusive range
    dst_port: Optional[Tuple[int, int]] = None  # inclusive range


@dataclass
class Acl:
    name: str
    lines: List[AclLine] = field(default_factory=list)

    def sorted_lines(self) -> List[AclLine]:
        return sorted(self.lines, key=lambda l: l.seq)


# -- protocol configuration --------------------------------------------------


@dataclass
class BgpNeighbor:
    """One eBGP/iBGP session, keyed by the peer's interface address."""

    peer_ip: int
    remote_as: int
    import_policy: Optional[str] = None
    export_policy: Optional[str] = None
    remove_private_as: bool = False
    next_hop_self: bool = True
    description: str = ""


@dataclass(frozen=True)
class Aggregate:
    """``aggregate-address``: activates when a contributor route exists."""

    prefix: Prefix
    summary_only: bool = False
    attribute_map: Optional[str] = None


@dataclass(frozen=True)
class ConditionalAdvertisement:
    """Cisco conditional advertisement: advertise ``prefix`` to a neighbor
    only when ``watch_prefix`` is present (``when_present``) or absent in
    the RIB.  This is the second source of prefix dependencies (§4.5).
    """

    prefix: Prefix
    watch_prefix: Prefix
    when_present: bool = True


@dataclass
class BgpConfig:
    asn: int
    router_id: int = 0
    neighbors: List[BgpNeighbor] = field(default_factory=list)
    networks: List[Prefix] = field(default_factory=list)
    aggregates: List[Aggregate] = field(default_factory=list)
    conditionals: List[ConditionalAdvertisement] = field(default_factory=list)
    maximum_paths: int = 1
    redistribute: List[str] = field(default_factory=list)  # "connected", "static", "ospf"

    def neighbor_for(self, peer_ip: int) -> Optional[BgpNeighbor]:
        for neighbor in self.neighbors:
            if neighbor.peer_ip == peer_ip:
                return neighbor
        return None


@dataclass
class OspfInterfaceConfig:
    area: int = 0
    cost: int = 1
    passive: bool = False


@dataclass
class OspfConfig:
    process_id: int = 1
    router_id: int = 0
    reference_bandwidth: int = 100_000
    interfaces: Dict[str, OspfInterfaceConfig] = field(default_factory=dict)
    redistribute: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class StaticRoute:
    prefix: Prefix
    next_hop: Optional[int] = None      # next-hop address
    interface: Optional[str] = None     # or an outgoing interface
    discard: bool = False               # Null0 — intentional blackhole
    admin_distance: int = 1
    tag: int = 0


@dataclass
class InterfaceConfig:
    name: str
    address: Optional[int] = None
    prefix: Optional[Prefix] = None     # the interface subnet
    acl_in: Optional[str] = None
    acl_out: Optional[str] = None
    shutdown: bool = False
    description: str = ""


@dataclass
class DeviceConfig:
    """The complete vendor-independent configuration of one device."""

    hostname: str
    behavior: VendorBehavior = field(default_factory=VendorBehavior)
    interfaces: Dict[str, InterfaceConfig] = field(default_factory=dict)
    bgp: Optional[BgpConfig] = None
    ospf: Optional[OspfConfig] = None
    static_routes: List[StaticRoute] = field(default_factory=list)
    route_maps: Dict[str, RouteMap] = field(default_factory=dict)
    prefix_lists: Dict[str, PrefixList] = field(default_factory=dict)
    community_lists: Dict[str, CommunityList] = field(default_factory=dict)
    as_path_lists: Dict[str, AsPathList] = field(default_factory=dict)
    acls: Dict[str, Acl] = field(default_factory=dict)

    def interface_for_address(self, address: int) -> Optional[InterfaceConfig]:
        """The interface whose subnet contains ``address``, if any."""
        for interface in self.interfaces.values():
            if interface.prefix is not None and interface.prefix.contains_ip(
                address
            ):
                return interface
        return None

    def validate(self) -> List[str]:
        """Return a list of referential-integrity problems (empty = clean)."""
        problems: List[str] = []

        def check_route_map(name: Optional[str], where: str) -> None:
            if name is not None and name not in self.route_maps:
                problems.append(f"{where} references missing route-map {name}")

        if self.bgp is not None:
            for neighbor in self.bgp.neighbors:
                where = f"bgp neighbor {neighbor.peer_ip}"
                check_route_map(neighbor.import_policy, where)
                check_route_map(neighbor.export_policy, where)
            for aggregate in self.bgp.aggregates:
                check_route_map(
                    aggregate.attribute_map, f"aggregate {aggregate.prefix}"
                )
        for route_map in self.route_maps.values():
            for clause in route_map.clauses:
                for match in clause.matches:
                    if (
                        isinstance(match, MatchPrefixList)
                        and match.name not in self.prefix_lists
                    ):
                        problems.append(
                            f"route-map {route_map.name} references missing "
                            f"prefix-list {match.name}"
                        )
                    if (
                        isinstance(match, MatchCommunityList)
                        and match.name not in self.community_lists
                    ):
                        problems.append(
                            f"route-map {route_map.name} references missing "
                            f"community-list {match.name}"
                        )
                    if (
                        isinstance(match, MatchAsPathList)
                        and match.name not in self.as_path_lists
                    ):
                        problems.append(
                            f"route-map {route_map.name} references missing "
                            f"as-path list {match.name}"
                        )
        for interface in self.interfaces.values():
            for acl_name in (interface.acl_in, interface.acl_out):
                if acl_name is not None and acl_name not in self.acls:
                    problems.append(
                        f"interface {interface.name} references missing "
                        f"ACL {acl_name}"
                    )
        return problems
