"""Routing policy semantics: route maps, lists, and VSB transformations.

:class:`PolicyEngine` evaluates a device's route maps against BGP routes.
It implements first-match clause semantics, conjunctive match conditions,
and the full set of ``set`` actions in :mod:`repro.config.ast`, including
the AS_PATH-overwrite policy and the two vendor-specific interpretations of
``remove-private-AS`` described in the paper's §2.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import TYPE_CHECKING, Optional, Tuple

from . import ast
from .ast import (
    Action,
    DeviceConfig,
    MatchAsPathList,
    MatchCommunityList,
    MatchPrefixList,
    MatchTag,
    RemovePrivateAsMode,
    RouteMap,
    SetAsPathPrepend,
    SetAsPathReplace,
    SetCommunities,
    SetDeleteCommunities,
    SetLocalPref,
    SetMed,
    SetNextHop,
    SetOrigin,
    SetTag,
    SetWeight,
    is_private_as,
)

if TYPE_CHECKING:  # avoid a config <-> routing import cycle at runtime
    from ..routing.route import BgpRoute


class PolicyError(RuntimeError):
    """Raised when a policy references something that does not exist."""


def as_path_regex_matches(pattern: str, as_path: Tuple[int, ...]) -> bool:
    """Match a Cisco-style AS-path regex against an AS path.

    The vendor notation's ``_`` means "boundary" (start, end, or space);
    we translate it and match against the space-joined path string.
    """
    text = " ".join(str(asn) for asn in as_path)
    translated = pattern.replace("_", r"(?:^|$|\s)")
    try:
        return re.search(translated, text) is not None
    except re.error as exc:
        raise PolicyError(f"bad as-path regex {pattern!r}: {exc}") from exc


def apply_remove_private_as(
    as_path: Tuple[int, ...], mode: RemovePrivateAsMode
) -> Tuple[int, ...]:
    """Strip private ASNs per the vendor's interpretation (§2.1 VSB)."""
    if mode is RemovePrivateAsMode.ALL:
        return tuple(asn for asn in as_path if not is_private_as(asn))
    # LEADING: only the private ASNs before the first non-private one.
    result = list(as_path)
    index = 0
    while index < len(result) and is_private_as(result[index]):
        index += 1
    return tuple(result[index:])


class PolicyEngine:
    """Evaluates the route maps of one device."""

    def __init__(self, config: DeviceConfig) -> None:
        self._config = config

    # -- matching ----------------------------------------------------------

    def _clause_matches(self, clause, route: BgpRoute) -> bool:
        config = self._config
        for match in clause.matches:
            if isinstance(match, MatchPrefixList):
                plist = config.prefix_lists.get(match.name)
                if plist is None:
                    raise PolicyError(f"missing prefix-list {match.name}")
                if not plist.permits(route.prefix):
                    return False
            elif isinstance(match, MatchCommunityList):
                clist = config.community_lists.get(match.name)
                if clist is None:
                    raise PolicyError(f"missing community-list {match.name}")
                if not clist.permits(route.communities):
                    return False
            elif isinstance(match, MatchAsPathList):
                alist = config.as_path_lists.get(match.name)
                if alist is None:
                    raise PolicyError(f"missing as-path list {match.name}")
                if not self._as_path_list_permits(alist, route.as_path):
                    return False
            elif isinstance(match, MatchTag):
                # BGP routes carry no tag in this model; treated as no-match.
                return False
            else:
                raise PolicyError(f"unknown match clause {match!r}")
        return True

    @staticmethod
    def _as_path_list_permits(
        alist: ast.AsPathList, as_path: Tuple[int, ...]
    ) -> bool:
        for line in alist.lines:
            if as_path_regex_matches(line.regex, as_path):
                return line.action is Action.PERMIT
        return False

    # -- transformation ------------------------------------------------------

    def _apply_sets(self, clause, route: BgpRoute, own_asn: int) -> BgpRoute:
        config = self._config
        for action in clause.sets:
            if isinstance(action, SetLocalPref):
                route = replace(route, local_pref=action.value)
            elif isinstance(action, SetMed):
                route = replace(route, med=action.value)
            elif isinstance(action, SetWeight):
                route = replace(route, weight=action.value)
            elif isinstance(action, SetOrigin):
                # type(route.origin) keeps policy decoupled from the
                # routing package (both Origin enums share values).
                route = replace(
                    route, origin=type(route.origin)(int(action.value))
                )
            elif isinstance(action, SetCommunities):
                if action.additive:
                    communities = route.communities | frozenset(
                        action.communities
                    )
                else:
                    communities = frozenset(action.communities)
                route = replace(route, communities=communities)
            elif isinstance(action, SetDeleteCommunities):
                clist = config.community_lists.get(action.community_list)
                if clist is None:
                    raise PolicyError(
                        f"missing community-list {action.community_list}"
                    )
                kept = frozenset(
                    value
                    for value in route.communities
                    if not clist.permits(frozenset([value]))
                )
                route = replace(route, communities=kept)
            elif isinstance(action, SetAsPathPrepend):
                route = route.with_prepend(action.asns)
            elif isinstance(action, SetAsPathReplace):
                asn = action.asn if action.asn is not None else own_asn
                route = replace(route, as_path=(asn,))
            elif isinstance(action, SetNextHop):
                route = replace(route, next_hop=action.address)
            elif isinstance(action, SetTag):
                pass  # tags do not affect BGP attributes in this model
            else:
                raise PolicyError(f"unknown set clause {action!r}")
        return route

    # -- entry point ---------------------------------------------------------

    def run(
        self, map_name: Optional[str], route: BgpRoute, own_asn: int
    ) -> Optional[BgpRoute]:
        """Apply route map ``map_name`` to ``route``.

        Returns the (possibly transformed) route on permit, or ``None`` on
        deny.  A missing map name means "no policy" and permits unchanged;
        a *named but undefined* map is a configuration error and denies
        everything, matching vendor behaviour for undefined route maps.
        """
        if map_name is None:
            return route
        route_map = self._config.route_maps.get(map_name)
        if route_map is None:
            return None
        for clause in route_map.sorted_clauses():
            if self._clause_matches(clause, route):
                if clause.action is Action.DENY:
                    return None
                return self._apply_sets(clause, route, own_asn)
        return None  # implicit deny at the end of a route map
