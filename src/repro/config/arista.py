"""Parser for the Arista-EOS-like configuration dialect.

The third vendor frontend.  EOS deliberately tracks IOS syntax, so this
parser subclasses the Cisco-like one and overrides only the genuine
divergences — which is precisely how multi-vendor DCNs end up with subtle
vendor-specific behaviours (§2.1):

* ``maximum-paths N ecmp M`` — EOS takes an extra ECMP argument; the
  effective multipath limit is ``M``;
* ``neighbor X remove-private-as all`` — EOS spells the strip-everything
  variant explicitly, and this dialect's VSB profile strips *all* private
  ASNs (the other interpretation from the Cisco-like dialect);
* interface names are ``EthernetN``;
* ``ip community-list expanded`` is accepted and treated as standard
  (EOS permits regex community lists; our standard matching is the subset
  the synthesized networks use).
"""

from __future__ import annotations

from typing import List

from .ast import DeviceConfig, RemovePrivateAsMode, VendorBehavior
from .cisco import CiscoParser
from .lexer import ConfigSyntaxError, Line

ARISTAISH_BEHAVIOR = VendorBehavior(
    vendor="aristaish",
    # This vendor strips every private ASN (§2.1 VSB).
    remove_private_as_mode=RemovePrivateAsMode.ALL,
)


class AristaParser(CiscoParser):
    """EOS-flavoured deviations on top of the IOS-like grammar."""

    def __init__(self, text: str) -> None:
        super().__init__(text)
        self._config.behavior = ARISTAISH_BEHAVIOR

    def _parse_neighbor_line(
        self, neighbor, words: List[str], line: Line
    ) -> None:
        # EOS: `neighbor X remove-private-as [all [replace-as]]`
        if words[0] == "remove-private-as":
            neighbor.remove_private_as = True
            return
        super()._parse_neighbor_line(neighbor, words, line)

    def _parse_community_list(self, words: List[str], line: Line) -> None:
        # EOS accepts `standard` and `expanded`; normalize to standard.
        if words[2] == "expanded":
            words = words[:2] + ["standard"] + words[3:]
        super()._parse_community_list(words, line)


def _rewrite_maximum_paths(text: str) -> str:
    """Normalize ``maximum-paths N ecmp M`` to the effective limit M."""
    lines = []
    for raw in text.splitlines():
        words = raw.split()
        if len(words) == 4 and words[0] == "maximum-paths" and words[2] == "ecmp":
            indent = raw[: len(raw) - len(raw.lstrip())]
            lines.append(f"{indent}maximum-paths {words[3]}")
        else:
            lines.append(raw)
    return "\n".join(lines) + ("\n" if text.endswith("\n") else "")


def parse_arista(text: str) -> DeviceConfig:
    """Parse Arista-like configuration text into a :class:`DeviceConfig`."""
    return AristaParser(_rewrite_maximum_paths(text)).parse()
