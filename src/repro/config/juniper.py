"""Parser for the Juniper-JunOS-like configuration dialect.

The second vendor frontend.  It parses the brace-structured grammar into a
generic tree first, then lowers the tree into the same
:class:`~repro.config.ast.DeviceConfig` the Cisco-like parser produces —
so a snapshot can freely mix vendors, as the paper's DCN does (5+ vendors).

This dialect carries the *other* ``remove-private-AS`` interpretation
(strip all private ASNs), exercising the VSB machinery end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.ip import Prefix, parse_ip
from .ast import (
    Acl,
    AclLine,
    Action,
    Aggregate,
    AsPathList,
    AsPathListLine,
    BgpConfig,
    BgpNeighbor,
    CommunityList,
    CommunityListLine,
    DeviceConfig,
    InterfaceConfig,
    MatchAsPathList,
    MatchCommunityList,
    MatchPrefixList,
    OspfConfig,
    OspfInterfaceConfig,
    PrefixList,
    PrefixListLine,
    RemovePrivateAsMode,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetAsPathReplace,
    SetCommunities,
    SetLocalPref,
    SetMed,
    StaticRoute,
    VendorBehavior,
    parse_community,
)
from .lexer import ConfigSyntaxError, tokenize_braces

JUNIPERISH_BEHAVIOR = VendorBehavior(
    vendor="juniperish",
    # This vendor strips every private ASN (§2.1 VSB).
    remove_private_as_mode=RemovePrivateAsMode.ALL,
)


@dataclass
class Node:
    """One node of the generic brace tree: ``name args { children }``."""

    name: str
    args: List[str] = field(default_factory=list)
    children: List["Node"] = field(default_factory=list)
    line: int = 0

    def child(self, name: str) -> Optional["Node"]:
        for node in self.children:
            if node.name == name:
                return node
        return None

    def all(self, name: str) -> List["Node"]:
        return [node for node in self.children if node.name == name]

    def leaf_args(self, name: str) -> Optional[List[str]]:
        """Args of the first child leaf called ``name``, if present."""
        node = self.child(name)
        return node.args if node is not None else None


def parse_tree(text: str) -> Node:
    """Parse brace-structured text into a :class:`Node` tree."""
    tokens = list(tokenize_braces(text))
    root = Node(name="<root>")
    stack = [root]
    pending: List[str] = []
    pending_line = 0
    for token, line_no in tokens:
        if token in ("[", "]"):
            pass  # brackets only group member words; flattening suffices
        elif token == "{":
            if not pending:
                raise ConfigSyntaxError("unexpected '{'", line_no)
            node = Node(pending[0], pending[1:], line=pending_line)
            stack[-1].children.append(node)
            stack.append(node)
            pending = []
        elif token == "}":
            if pending:
                node = Node(pending[0], pending[1:], line=pending_line)
                stack[-1].children.append(node)
                pending = []
            if len(stack) == 1:
                raise ConfigSyntaxError("unbalanced '}'", line_no)
            stack.pop()
        elif token == ";":
            if pending:
                node = Node(pending[0], pending[1:], line=pending_line)
                stack[-1].children.append(node)
                pending = []
        else:
            if not pending:
                pending_line = line_no
            pending.append(token)
    if pending:
        root.children.append(Node(pending[0], pending[1:], line=pending_line))
    if len(stack) != 1:
        raise ConfigSyntaxError("unbalanced '{' at end of input")
    return root


class JuniperParser:
    """Lowers the brace tree into a :class:`DeviceConfig`."""

    def __init__(self, text: str) -> None:
        self._tree = parse_tree(text)
        self._config = DeviceConfig(hostname="", behavior=JUNIPERISH_BEHAVIOR)

    def parse(self) -> DeviceConfig:
        for section in self._tree.children:
            handler = {
                "system": self._lower_system,
                "interfaces": self._lower_interfaces,
                "routing-options": self._lower_routing_options,
                "protocols": self._lower_protocols,
                "policy-options": self._lower_policy_options,
                "firewall": self._lower_firewall,
            }.get(section.name)
            if handler is None:
                raise ConfigSyntaxError(
                    f"unrecognized section {section.name!r}", section.line
                )
            handler(section)
        if not self._config.hostname:
            raise ConfigSyntaxError("missing system host-name")
        return self._config

    # -- sections ----------------------------------------------------------

    def _lower_system(self, section: Node) -> None:
        args = section.leaf_args("host-name")
        if args:
            self._config.hostname = args[0]

    def _lower_interfaces(self, section: Node) -> None:
        for iface_node in section.children:
            interface = InterfaceConfig(name=iface_node.name)
            unit = iface_node.child("unit")
            family = unit.child("family") if unit else iface_node.child("family")
            inet = family.child("inet") if family else None
            if inet is not None:
                address = inet.leaf_args("address")
                if address:
                    addr_text, _, length = address[0].partition("/")
                    interface.address = parse_ip(addr_text)
                    # Prefix() masks host bits, giving the subnet prefix.
                    interface.prefix = Prefix(interface.address, int(length))
                filt = inet.child("filter")
                if filt is not None:
                    inp = filt.leaf_args("input")
                    out = filt.leaf_args("output")
                    interface.acl_in = inp[0] if inp else None
                    interface.acl_out = out[0] if out else None
            if iface_node.child("disable") is not None:
                interface.shutdown = True
            self._config.interfaces[interface.name] = interface

    def _lower_routing_options(self, section: Node) -> None:
        rid = section.leaf_args("router-id")
        asn = section.leaf_args("autonomous-system")
        if asn:
            bgp = self._ensure_bgp(int(asn[0]))
            if rid:
                bgp.router_id = parse_ip(rid[0])
        maxp = section.leaf_args("maximum-paths")
        if maxp:
            self._ensure_bgp(0).maximum_paths = int(maxp[0])
        static = section.child("static")
        if static is not None:
            for route_node in static.all("route"):
                prefix = Prefix.parse(route_node.args[0])
                if route_node.child("discard") is not None or (
                    "discard" in route_node.args
                ):
                    self._config.static_routes.append(
                        StaticRoute(prefix=prefix, discard=True)
                    )
                else:
                    nh = route_node.leaf_args("next-hop")
                    if nh is None:
                        raise ConfigSyntaxError(
                            f"static route {prefix} lacks next-hop/discard",
                            route_node.line,
                        )
                    self._config.static_routes.append(
                        StaticRoute(prefix=prefix, next_hop=parse_ip(nh[0]))
                    )

    def _ensure_bgp(self, asn: int) -> BgpConfig:
        if self._config.bgp is None:
            self._config.bgp = BgpConfig(asn=asn)
        elif asn and self._config.bgp.asn == 0:
            self._config.bgp.asn = asn
        return self._config.bgp

    def _lower_protocols(self, section: Node) -> None:
        bgp_node = section.child("bgp")
        if bgp_node is not None:
            self._lower_bgp(bgp_node)
        ospf_node = section.child("ospf")
        if ospf_node is not None:
            self._lower_ospf(ospf_node)

    def _lower_bgp(self, bgp_node: Node) -> None:
        bgp = self._ensure_bgp(0)
        for group in bgp_node.all("group"):
            group_import = group.leaf_args("import")
            group_export = group.leaf_args("export")
            for neighbor_node in group.all("neighbor"):
                peer_ip = parse_ip(neighbor_node.args[0])
                peer_as_args = neighbor_node.leaf_args("peer-as")
                if peer_as_args is None:
                    peer_as_args = group.leaf_args("peer-as")
                if peer_as_args is None:
                    raise ConfigSyntaxError(
                        f"neighbor {neighbor_node.args[0]} lacks peer-as",
                        neighbor_node.line,
                    )
                imp = neighbor_node.leaf_args("import") or group_import
                exp = neighbor_node.leaf_args("export") or group_export
                remove_private = (
                    neighbor_node.child("remove-private") is not None
                    or group.child("remove-private") is not None
                )
                bgp.neighbors.append(
                    BgpNeighbor(
                        peer_ip=peer_ip,
                        remote_as=int(peer_as_args[0]),
                        import_policy=imp[0] if imp else None,
                        export_policy=exp[0] if exp else None,
                        remove_private_as=remove_private,
                    )
                )
        multipath = bgp_node.leaf_args("multipath")
        if multipath:
            bgp.maximum_paths = int(multipath[0])
        for agg in bgp_node.all("aggregate"):
            for route_node in agg.all("route"):
                bgp.aggregates.append(
                    Aggregate(
                        prefix=Prefix.parse(route_node.args[0]),
                        summary_only="summary-only" in route_node.args
                        or route_node.child("summary-only") is not None,
                    )
                )
        for network in bgp_node.all("network"):
            bgp.networks.append(Prefix.parse(network.args[0]))
        for redis in bgp_node.all("redistribute"):
            bgp.redistribute.append(redis.args[0])

    def _lower_ospf(self, ospf_node: Node) -> None:
        ospf = self._config.ospf or OspfConfig()
        self._config.ospf = ospf
        rid = ospf_node.leaf_args("router-id")
        if rid:
            ospf.router_id = parse_ip(rid[0])
        for area_node in ospf_node.all("area"):
            area_id = int(area_node.args[0])
            for iface_node in area_node.all("interface"):
                entry = ospf.interfaces.setdefault(
                    iface_node.args[0], OspfInterfaceConfig()
                )
                entry.area = area_id
                metric = iface_node.leaf_args("metric")
                if metric:
                    entry.cost = int(metric[0])
                if iface_node.child("passive") is not None:
                    entry.passive = True

    def _lower_policy_options(self, section: Node) -> None:
        for node in section.children:
            if node.name == "prefix-list":
                plist = self._config.prefix_lists.setdefault(
                    node.args[0], PrefixList(node.args[0])
                )
                for seq, entry in enumerate(node.children, start=1):
                    plist.lines.append(
                        PrefixListLine(
                            seq=seq,
                            action=Action.PERMIT,
                            prefix=Prefix.parse(entry.name),
                        )
                    )
            elif node.name == "community":
                # community NAME members [ 65000:1 65000:2 ]
                name = node.args[0]
                rest = node.args[1:]
                if rest and rest[0] == "members":
                    rest = rest[1:]
                clist = self._config.community_lists.setdefault(
                    name, CommunityList(name)
                )
                clist.lines.append(
                    CommunityListLine(
                        Action.PERMIT,
                        tuple(parse_community(w) for w in rest),
                    )
                )
            elif node.name == "as-path":
                # as-path NAME "regex"
                alist = self._config.as_path_lists.setdefault(
                    node.args[0], AsPathList(node.args[0])
                )
                regex = " ".join(node.args[1:]).strip('"')
                alist.lines.append(AsPathListLine(Action.PERMIT, regex))
            elif node.name == "policy-statement":
                self._lower_policy_statement(node)
            else:
                raise ConfigSyntaxError(
                    f"unrecognized policy-options entry {node.name!r}",
                    node.line,
                )

    def _lower_policy_statement(self, node: Node) -> None:
        route_map = self._config.route_maps.setdefault(
            node.args[0], RouteMap(node.args[0])
        )
        for seq, term in enumerate(node.all("term"), start=1):
            clause = RouteMapClause(seq=seq * 10, action=Action.PERMIT)
            from_node = term.child("from")
            if from_node is not None:
                for match in from_node.children:
                    if match.name == "prefix-list":
                        clause.matches.append(MatchPrefixList(match.args[0]))
                    elif match.name == "community":
                        clause.matches.append(
                            MatchCommunityList(match.args[0])
                        )
                    elif match.name == "as-path":
                        clause.matches.append(MatchAsPathList(match.args[0]))
                    else:
                        raise ConfigSyntaxError(
                            f"unrecognized from condition {match.name!r}",
                            match.line,
                        )
            then_node = term.child("then")
            accepted: Optional[bool] = None
            if then_node is not None:
                for action in then_node.children:
                    if action.name == "accept":
                        accepted = True
                    elif action.name == "reject":
                        accepted = False
                    elif action.name == "local-preference":
                        clause.sets.append(SetLocalPref(int(action.args[0])))
                    elif action.name == "metric":
                        clause.sets.append(SetMed(int(action.args[0])))
                    elif action.name == "community":
                        if action.args[0] == "add":
                            values = self._community_values(action.args[1])
                            clause.sets.append(
                                SetCommunities(values, additive=True)
                            )
                        elif action.args[0] == "set":
                            values = self._community_values(action.args[1])
                            clause.sets.append(SetCommunities(values))
                        else:
                            raise ConfigSyntaxError(
                                "community action must be add/set",
                                action.line,
                            )
                    elif action.name == "as-path-prepend":
                        clause.sets.append(
                            SetAsPathPrepend(
                                tuple(int(a) for a in action.args)
                            )
                        )
                    elif action.name == "as-path-replace":
                        clause.sets.append(SetAsPathReplace())
                    else:
                        raise ConfigSyntaxError(
                            f"unrecognized then action {action.name!r}",
                            action.line,
                        )
            if accepted is False:
                clause.action = Action.DENY
            route_map.clauses.append(clause)

    def _community_values(self, list_name: str) -> Tuple[int, ...]:
        """Resolve a named community definition into its member values."""
        clist = self._config.community_lists.get(list_name)
        if clist is None:
            raise ConfigSyntaxError(f"unknown community {list_name!r}")
        values: List[int] = []
        for line in clist.lines:
            values.extend(line.communities)
        return tuple(values)

    def _lower_firewall(self, section: Node) -> None:
        family = section.child("family")
        inet = family.child("inet") if family else section
        for filter_node in inet.all("filter"):
            acl = self._config.acls.setdefault(
                filter_node.args[0], Acl(filter_node.args[0])
            )
            for seq, term in enumerate(filter_node.all("term"), start=1):
                from_node = term.child("from")
                src = dst = None
                protocol = None
                src_port = None
                dst_port = None
                if from_node is not None:
                    src_args = from_node.leaf_args("source-address")
                    dst_args = from_node.leaf_args("destination-address")
                    proto_args = from_node.leaf_args("protocol")
                    sport_args = from_node.leaf_args("source-port")
                    port_args = from_node.leaf_args("destination-port")
                    if src_args:
                        src = Prefix.parse(src_args[0])
                    if dst_args:
                        dst = Prefix.parse(dst_args[0])
                    if proto_args:
                        protocol = {"tcp": 6, "udp": 17, "icmp": 1}.get(
                            proto_args[0], None
                        )
                        if protocol is None:
                            protocol = int(proto_args[0])
                    if sport_args:
                        src_port = _port_range(sport_args[0])
                    if port_args:
                        dst_port = _port_range(port_args[0])
                then_node = term.child("then")
                action = Action.PERMIT
                if then_node is not None and (
                    then_node.child("discard") is not None
                    or then_node.child("reject") is not None
                ):
                    action = Action.DENY
                acl.lines.append(
                    AclLine(
                        seq=seq * 10,
                        action=action,
                        src=src,
                        dst=dst,
                        protocol=protocol,
                        src_port=src_port,
                        dst_port=dst_port,
                    )
                )


def _port_range(arg: str) -> "Tuple[int, int]":
    """A JunOS port match: a single port (``80``) or a range (``1024-2048``)."""
    if "-" in arg:
        low, high = arg.split("-", 1)
        return int(low), int(high)
    port = int(arg)
    return port, port


def parse_juniper(text: str) -> DeviceConfig:
    """Parse Juniper-like configuration text into a :class:`DeviceConfig`."""
    return JuniperParser(text).parse()
