"""Unit tests for the hardened RPC transport.

Framing (including a random byte-split fuzz over the incremental
decoder), the failure taxonomy, and the channel/server pair under
injected network chaos: torn frames, directional partitions, reorders,
slow links, timeouts, backpressure, and heartbeat failure detection.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time

import pytest

from repro.dist.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.dist.transport import (
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    ConnectionLostError,
    FrameDecoder,
    FrameError,
    RpcChannel,
    RpcServer,
    RpcTimeoutError,
    TransportError,
    encode_frame,
    mapped_transport_errors,
    parse_hostport,
)

_HEADER = struct.Struct("!4sII")


def _fast_policy(**overrides) -> RetryPolicy:
    defaults = dict(
        call_timeout=5.0,
        max_call_retries=3,
        backoff_base=0.01,
        connect_timeout=2.0,
        heartbeat_interval_seconds=0.0,
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


# -- framing ----------------------------------------------------------------


def test_frame_roundtrip():
    decoder = FrameDecoder()
    payloads = [b"", b"x", b"hello world" * 100]
    wire = b"".join(encode_frame(p) for p in payloads)
    assert decoder.feed(wire) == payloads
    assert decoder.frames_decoded == 3
    assert decoder.pending_bytes == 0


def test_decoder_survives_any_byte_split():
    """The decoder is an incremental state machine: no matter how the
    stream is chopped (TCP gives no message boundaries), every payload
    comes out whole and in order."""
    rng = random.Random(0xF8A3)
    payloads = [
        rng.randbytes(rng.randrange(0, 200)) for _ in range(40)
    ]
    wire = b"".join(encode_frame(p) for p in payloads)
    for trial in range(25):
        decoder = FrameDecoder()
        out = []
        position = 0
        while position < len(wire):
            step = rng.randrange(1, 37)
            out.extend(decoder.feed(wire[position:position + step]))
            position += step
        assert out == payloads, f"trial {trial}"
        assert decoder.pending_bytes == 0


def test_decoder_rejects_bad_magic():
    with pytest.raises(FrameError, match="bad frame magic"):
        FrameDecoder().feed(b"XXXX" + b"\x00" * 20)


def test_decoder_rejects_checksum_mismatch():
    frame = bytearray(encode_frame(b"payload bytes"))
    frame[-1] ^= 0xFF  # flip one payload byte; header CRC now disagrees
    with pytest.raises(FrameError, match="checksum mismatch"):
        FrameDecoder().feed(bytes(frame))


def test_decoder_rejects_impossible_length():
    header = _HEADER.pack(FRAME_MAGIC, MAX_FRAME_BYTES + 1, 0)
    with pytest.raises(FrameError, match="exceeds"):
        FrameDecoder().feed(header)


def test_torn_frame_leaves_pending_bytes():
    frame = encode_frame(b"a" * 64)
    decoder = FrameDecoder()
    assert decoder.feed(frame[: len(frame) // 2]) == []
    assert decoder.pending_bytes == len(frame) // 2
    assert decoder.feed(frame[len(frame) // 2:]) == [b"a" * 64]
    assert decoder.pending_bytes == 0


# -- taxonomy ---------------------------------------------------------------


def test_mapped_transport_errors_wraps_os_failures():
    for raised in (BrokenPipeError(), EOFError(), OSError("boom"),
                   ConnectionResetError()):
        with pytest.raises(ConnectionLostError, match="during sending"):
            with mapped_transport_errors("sending"):
                raise raised


def test_mapped_transport_errors_passes_taxonomy_through():
    """Nested mapping must not double-wrap (or re-label) taxonomy errors."""
    original = RpcTimeoutError("deadline")
    with pytest.raises(RpcTimeoutError) as excinfo:
        with mapped_transport_errors("outer"):
            with mapped_transport_errors("inner"):
                raise original
    assert excinfo.value is original
    assert issubclass(ConnectionLostError, TransportError)
    assert issubclass(FrameError, TransportError)
    assert issubclass(RpcTimeoutError, TransportError)


def test_parse_hostport():
    assert parse_hostport("10.0.0.7:9001") == ("10.0.0.7", 9001)
    assert parse_hostport("9001") == ("127.0.0.1", 9001)
    assert parse_hostport(":9001") == ("127.0.0.1", 9001)
    with pytest.raises(ValueError, match="host:port"):
        parse_hostport("hostA:")
    with pytest.raises(ValueError, match="out of range"):
        parse_hostport("hostA:70000")


# -- channel + server -------------------------------------------------------


class _Service:
    """A toy RPC service: echoes args, counts executions, can stall."""

    def __init__(self):
        self.calls = []
        self.stall = None  # an Event the handler waits on, when set

    def handle(self, command, args, flow_id):
        self.calls.append(command)
        if self.stall is not None:
            self.stall.wait(10.0)
        if command == "boom":
            return "exc", ("ValueError", "injected", "")
        return "ok", ("echo", command, args)


class _Harness:
    def __init__(self, policy=None, fault_plan=None, heartbeat=False):
        self.service = _Service()
        self.server = RpcServer(self.service.handle)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        self.channel = RpcChannel(
            (self.server.host, self.server.port),
            policy=policy or _fast_policy(),
            worker_id=0,
            fault_plan=fault_plan,
            heartbeat=heartbeat,
        )

    def close(self):
        self.channel.close()
        self.server.stop()
        self.thread.join(5.0)


@pytest.fixture
def harness():
    built = []

    def build(**kwargs):
        h = _Harness(**kwargs)
        built.append(h)
        return h

    yield build
    for h in built:
        h.close()


def test_basic_call_roundtrip(harness):
    h = harness()
    status, payload = h.channel.call("compute", (1, "two"))
    assert status == "ok"
    assert payload == ("echo", "compute", (1, "two"))
    assert h.channel.counters["calls"] == 1
    assert h.channel.counters["frames_sent"] == 1
    assert h.server.stats["requests"] == 1
    # Application-level failures are payload, not transport failures.
    status, payload = h.channel.call("boom")
    assert status == "exc"
    assert payload[0] == "ValueError"


def test_call_timeout_raises_and_counts(harness):
    h = harness(policy=_fast_policy(call_timeout=0.2, max_call_retries=0))
    h.service.stall = threading.Event()  # never set: the handler hangs
    with pytest.raises(RpcTimeoutError, match="did not answer"):
        h.channel.call("pull_round")
    assert h.channel.counters["timeouts"] >= 1
    h.service.stall.set()


def test_unreachable_server_raises_connection_lost():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()  # nothing listens here now
    channel = RpcChannel(
        ("127.0.0.1", port),
        policy=_fast_policy(call_timeout=1.0, max_call_retries=1),
    )
    try:
        with pytest.raises(ConnectionLostError, match="cannot reach"):
            channel.call("ping")
        assert channel.counters["retries"] == 1
    finally:
        channel.close()


def test_transparent_reconnection(harness):
    h = harness()
    assert h.channel.call("first")[0] == "ok"
    h.channel._drop_connection()  # as a network blip would
    assert h.channel.call("second")[0] == "ok"
    assert h.channel.counters["reconnects"] == 1
    assert h.server.stats["connections"] == 2


def test_window_backpressure(harness):
    h = harness(policy=_fast_policy(rpc_window=1))
    h.service.stall = threading.Event()
    first_done = threading.Event()

    def long_call():
        h.channel.call("slow")
        first_done.set()

    runner = threading.Thread(target=long_call, daemon=True)
    runner.start()
    time.sleep(0.1)  # let the first call occupy the window
    with pytest.raises(RpcTimeoutError, match="no in-flight slot"):
        h.channel.call("starved", timeout=0.2)
    h.service.stall.set()
    assert first_done.wait(5.0)
    assert h.channel.counters["inflight_high_water"] == 1


def test_torn_frame_is_retried_and_never_executed_twice(harness):
    plan = FaultPlan(
        [FaultSpec(kind="torn_frame", worker=0, command="pull_round")]
    )
    h = harness(fault_plan=plan)
    status, payload = h.channel.call("pull_round", (7,))
    assert status == "ok" and payload == ("echo", "pull_round", (7,))
    assert plan.count("torn_frame") == 1
    assert h.channel.counters["torn_frames"] >= 1
    assert h.channel.counters["retries"] >= 1
    assert h.server.stats["torn_frames"] >= 1
    # The torn copy never parsed, so the command executed exactly once.
    assert h.service.calls.count("pull_round") == 1


def test_response_partition_exercises_idempotency_cache(harness):
    """A response-direction partition lets the server execute but cuts
    the answer: the retry (same request id) must be answered from the
    server's response cache, not re-executed."""
    plan = FaultPlan(
        [
            FaultSpec(
                kind="partition",
                worker=0,
                command="deliver_routes",
                where="response",
                heal_after=1,
            )
        ]
    )
    h = harness(fault_plan=plan)
    status, _payload = h.channel.call("deliver_routes", ("batch",))
    assert status == "ok"
    assert plan.count("partition") == 1
    assert h.server.stats["dedup_replays"] >= 1
    assert h.service.calls.count("deliver_routes") == 1
    assert h.channel.counters["reconnects"] >= 1


def test_request_partition_heals_after_budget(harness):
    plan = FaultPlan(
        [
            FaultSpec(
                kind="partition",
                worker=0,
                command="pull_round",
                where="request",
                heal_after=2,
            )
        ]
    )
    h = harness(fault_plan=plan)
    status, _ = h.channel.call("pull_round")
    assert status == "ok"
    # Two transmissions were blocked before the link healed.
    assert h.channel.counters["retries"] >= 2
    assert h.service.calls.count("pull_round") == 1


def test_slow_link_delays_but_delivers(harness):
    plan = FaultPlan(
        [FaultSpec(kind="slow_link", worker=0, command="sync", delay=0.05)]
    )
    h = harness(fault_plan=plan)
    started = time.monotonic()
    assert h.channel.call("sync")[0] == "ok"
    assert time.monotonic() - started >= 0.05
    assert plan.count("slow_link") == 1


def test_reorder_is_flushed_and_answered(harness):
    plan = FaultPlan(
        [FaultSpec(kind="reorder", worker=0, command="sync")]
    )
    h = harness(fault_plan=plan)
    assert h.channel.call("sync")[0] == "ok"  # timer flushes the held frame
    assert plan.count("reorder") == 1
    assert h.service.calls.count("sync") == 1


def test_internal_calls_bypass_fault_injection(harness):
    plan = FaultPlan(
        [FaultSpec(kind="torn_frame", worker=0, times=0)]  # every call
    )
    h = harness(fault_plan=plan)
    status, payload = h.channel.call("__ping__", internal=True)
    assert (status, payload) == ("ok", "pong")
    assert plan.count("torn_frame") == 0


def test_heartbeat_marks_unresponsive_peer_suspect():
    """A peer that accepts bytes but never answers must go suspect after
    SUSPECT_AFTER consecutive heartbeat failures."""
    blackhole = socket.socket()
    blackhole.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    blackhole.bind(("127.0.0.1", 0))
    blackhole.listen(1)
    sinks = []

    def swallow():
        while True:
            try:
                conn, _ = blackhole.accept()
            except OSError:
                return
            sinks.append(conn)

    thread = threading.Thread(target=swallow, daemon=True)
    thread.start()
    channel = RpcChannel(
        blackhole.getsockname(),
        policy=_fast_policy(
            call_timeout=0.1,
            max_call_retries=0,
            heartbeat_interval_seconds=0.03,
        ),
        heartbeat=True,
    )
    try:
        channel.connect()
        assert channel.healthy()
        deadline = time.monotonic() + 5.0
        while channel.healthy() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not channel.healthy()
        assert (
            channel.counters["heartbeat_failures"]
            >= RpcChannel.SUSPECT_AFTER
        )
    finally:
        channel.close()
        blackhole.close()
        for conn in sinks:
            conn.close()
        thread.join(2.0)


def test_server_stop_command(harness):
    h = harness()
    status, _ = h.channel.call("__stop__", internal=True)
    assert status == "ok"
    h.thread.join(5.0)
    assert not h.thread.is_alive()


def test_server_response_cache_is_bounded(harness):
    from repro.dist.transport import RESPONSE_CACHE_SIZE

    h = harness()
    for i in range(RESPONSE_CACHE_SIZE + 20):
        assert h.channel.call("fill", (i,))[0] == "ok"
    assert len(h.server._responses) <= RESPONSE_CACHE_SIZE
