"""Tests for the network partitioner and its five schemes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.partition import (
    SCHEMES,
    PartitionResult,
    estimate_loads,
    partition,
)


@pytest.fixture(scope="module", params=SCHEMES)
def scheme(request):
    return request.param


class TestAllSchemes:
    def test_every_node_assigned_once(self, fattree6, scheme):
        result = partition(fattree6, 4, scheme=scheme)
        assert set(result.assignment) == set(fattree6.topology.node_names())
        assert all(0 <= w < 4 for w in result.assignment.values())

    def test_single_worker_trivial(self, fattree4, scheme):
        result = partition(fattree4, 1, scheme=scheme)
        assert set(result.assignment.values()) == {0}

    def test_deterministic(self, fattree6, scheme):
        a = partition(fattree6, 4, scheme=scheme)
        b = partition(fattree6, 4, scheme=scheme)
        assert a.assignment == b.assignment

    def test_all_workers_used(self, fattree6, scheme):
        result = partition(fattree6, 4, scheme=scheme)
        assert set(result.assignment.values()) == {0, 1, 2, 3}

    def test_dcn_partitionable(self, dcn1, scheme):
        result = partition(dcn1, 4, scheme=scheme)
        assert set(result.assignment) == set(dcn1.topology.node_names())


class TestBalance:
    def test_balanced_schemes_are_balanced(self, fattree6):
        loads = estimate_loads(fattree6)
        for scheme in ("metis", "random", "expert"):
            result = partition(fattree6, 4, scheme=scheme)
            assert result.imbalance(loads) < 1.35, scheme

    def test_imbalanced_scheme_is_imbalanced(self, fattree6):
        loads = estimate_loads(fattree6)
        result = partition(fattree6, 4, scheme="imbalanced")
        # 3/4 of the network on worker 0 (§5.6)
        assert result.imbalance(loads) > 2.0
        segments = result.segments()
        assert len(segments[0]) >= len(fattree6.topology.node_names()) * 0.7

    def test_metis_cut_not_worse_than_random(self, fattree6):
        metis = partition(fattree6, 4, scheme="metis")
        rand = partition(fattree6, 4, scheme="random")
        assert metis.edge_cut(fattree6.topology) <= rand.edge_cut(
            fattree6.topology
        )

    def test_commheavy_cuts_every_link(self, fattree6):
        result = partition(fattree6, 8, scheme="commheavy")
        # edges/cores vs aggs: every FatTree link joins different layers
        assert result.edge_cut(fattree6.topology) == len(
            list(fattree6.topology.links())
        )

    def test_expert_keeps_pods_together(self, fattree6):
        result = partition(fattree6, 3, scheme="expert")
        topology = fattree6.topology
        for pod in range(6):
            members = {
                result.assignment[n.name]
                for n in topology.nodes()
                if n.pod == pod
            }
            assert len(members) == 1


class TestLoadEstimation:
    def test_fattree_formula(self, fattree6):
        loads = estimate_loads(fattree6)
        # §4.1: core/agg ~ k^3/2, edge ~ k^3/4
        assert loads["core-0"] == 6 ** 3 // 2
        assert loads["agg-0-0"] == 6 ** 3 // 2
        assert loads["edge-0-0"] == 6 ** 3 // 4

    def test_dcn_degree_weighted(self, dcn1):
        loads = estimate_loads(dcn1)
        for name, load in loads.items():
            assert load == max(1, dcn1.topology.degree(name))


class TestResultApi:
    def test_segments_partition_nodes(self, fattree4):
        result = partition(fattree4, 3, scheme="metis")
        segments = result.segments()
        flat = [n for seg in segments for n in seg]
        assert sorted(flat) == sorted(fattree4.topology.node_names())

    def test_unknown_scheme_rejected(self, fattree4):
        with pytest.raises(ValueError):
            partition(fattree4, 2, scheme="voodoo")

    def test_zero_workers_rejected(self, fattree4):
        with pytest.raises(ValueError):
            partition(fattree4, 0)

    @given(st.integers(1, 10))
    @settings(max_examples=10, deadline=None)
    def test_any_worker_count_covers(self, workers):
        from repro.net.fattree import build_fattree

        snapshot = build_fattree(4)
        result = partition(snapshot, workers, scheme="metis")
        assert len(set(result.assignment)) == 20
