"""Tests for prefix sharding: DPDG, components, packing, validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.sharding import (
    Dpdg,
    build_dpdg,
    make_shards,
    pack_components,
    validate_shards,
)
from repro.net.ip import Prefix
from repro.routing.engine import collect_network_prefixes


class TestDpdg:
    def test_fattree_has_no_dependencies(self, fattree4):
        dpdg = build_dpdg(fattree4)
        assert dpdg.edges == set()
        assert len(dpdg.prefixes) == 8

    def test_dcn_aggregate_dependencies(self, dcn1):
        dpdg = build_dpdg(dcn1)
        agg = Prefix.parse("10.3.0.0/16")
        deps = {b for a, b in dpdg.edges if a == agg}
        # the 5-layer cluster's VLAN aggregate depends on its TOR /24s
        assert Prefix.parse("10.3.0.0/24") in deps
        assert Prefix.parse("10.3.5.0/24") in deps
        # but not on another cluster's prefixes
        assert Prefix.parse("10.1.0.0/24") not in deps

    def test_dcn_conditional_dependency(self, dcn1):
        dpdg = build_dpdg(dcn1)
        assert (
            Prefix.parse("0.0.0.0/0"),
            Prefix.parse("8.8.8.0/24"),
        ) in dpdg.edges

    def test_components_group_dependencies(self, dcn1):
        dpdg = build_dpdg(dcn1)
        components = dpdg.weakly_connected_components()
        by_prefix = {}
        for i, component in enumerate(components):
            for prefix in component:
                by_prefix[prefix] = i
        assert by_prefix[Prefix.parse("10.3.0.0/16")] == by_prefix[
            Prefix.parse("10.3.0.0/24")
        ]
        assert by_prefix[Prefix.parse("0.0.0.0/0")] == by_prefix[
            Prefix.parse("8.8.8.0/24")
        ]

    def test_components_cover_all_prefixes_once(self, dcn1):
        dpdg = build_dpdg(dcn1)
        components = dpdg.weakly_connected_components()
        flat = [p for c in components for p in c]
        assert len(flat) == len(set(flat)) == len(dpdg.prefixes)

    def test_manual_dpdg(self):
        dpdg = Dpdg()
        a, b, c = (Prefix.parse(f"10.{i}.0.0/16") for i in range(3))
        dpdg.add_prefix(c)
        dpdg.add_dependency(a, b)
        components = dpdg.weakly_connected_components()
        assert sorted(map(len, components)) == [1, 2]


class TestMakeShards:
    def test_exact_cover(self, fattree4):
        shards = make_shards(fattree4, 3)
        assert validate_shards(shards, fattree4) == []
        total = sum(len(s) for s in shards)
        assert total == len(collect_network_prefixes(fattree4))

    def test_dcn_cover_and_cosharding(self, dcn1):
        shards = make_shards(dcn1, 6)
        assert validate_shards(shards, dcn1) == []

    def test_fewer_components_than_shards(self, fattree4):
        shards = make_shards(fattree4, 100)
        assert len(shards) == 8  # one shard per prefix, no empties

    def test_single_shard(self, fattree4):
        shards = make_shards(fattree4, 1)
        assert len(shards) == 1
        assert len(shards[0]) == 8

    def test_membership_protocol(self, fattree4):
        shards = make_shards(fattree4, 2)
        p = Prefix.parse("10.0.0.0/24")
        assert any(p in shard for shard in shards)

    def test_invalid_count_rejected(self, fattree4):
        with pytest.raises(ValueError):
            make_shards(fattree4, 0)

    def test_deterministic_for_seed(self, dcn1):
        a = make_shards(dcn1, 5, seed=3)
        b = make_shards(dcn1, 5, seed=3)
        assert [s.prefixes for s in a] == [s.prefixes for s in b]

    def test_seed_shuffles_equal_size_components(self, fattree4):
        a = make_shards(fattree4, 4, seed=1)
        b = make_shards(fattree4, 4, seed=2)
        # same sizes, (almost certainly) different membership
        assert sorted(len(s) for s in a) == sorted(len(s) for s in b)


class TestPacking:
    def test_balanced_sizes(self):
        components = [[Prefix(i << 8, 24)] for i in range(40)]
        shards = pack_components(components, 8)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_large_component_isolated(self):
        big = [Prefix(i << 8, 24) for i in range(10)]
        small = [[Prefix((100 + i) << 8, 24)] for i in range(3)]
        shards = pack_components([big] + small, 2)
        sizes = sorted(len(s) for s in shards)
        assert sizes == [3, 10]

    @given(
        st.lists(
            st.integers(1, 6), min_size=1, max_size=20
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_lpt_bound(self, component_sizes, num_shards):
        """Greedy LPT never exceeds mean + largest-component size."""
        components = []
        counter = 0
        for size in component_sizes:
            component = []
            for _ in range(size):
                component.append(Prefix(counter << 8, 24))
                counter += 1
            components.append(component)
        shards = pack_components(components, num_shards)
        total = sum(component_sizes)
        effective = min(num_shards, len(components))
        mean = total / effective
        assert max(len(s) for s in shards) <= mean + max(component_sizes)

    @given(st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_cover_property(self, num_shards):
        components = [[Prefix(i << 8, 24)] for i in range(17)]
        shards = pack_components(components, num_shards)
        flat = {p for s in shards for p in s.prefixes}
        assert len(flat) == 17
        assert all(len(s) > 0 for s in shards)


class TestShardedEqualsUnsharded:
    """§4.5 correctness: sharding must not change the fixed point."""

    @pytest.mark.parametrize("num_shards", [2, 5])
    def test_fattree(self, fattree4, fattree4_sim, num_shards):
        from repro.routing.engine import SimulationEngine

        _, unsharded = fattree4_sim
        engine = SimulationEngine(fattree4)
        shards = make_shards(fattree4, num_shards)
        sharded = engine.run([s.prefixes for s in shards])
        assert sharded == unsharded

    def test_dcn_with_dependencies(self, dcn1, dcn1_sim):
        from repro.routing.engine import SimulationEngine

        _, unsharded = dcn1_sim
        engine = SimulationEngine(dcn1)
        shards = make_shards(dcn1, 7)
        sharded = engine.run([s.prefixes for s in shards])
        assert sharded == unsharded


class TestShardQueries:
    def test_round_robin_balance(self):
        from repro.dist.sharding import shard_queries

        shards = shard_queries([f"edge-{i}" for i in range(10)], 4)
        assert len(shards) == 4
        sizes = sorted(len(s) for s in shards)
        assert sizes == [2, 2, 3, 3]
        flattened = sorted(s for shard in shards for s in shard)
        assert flattened == sorted(f"edge-{i}" for i in range(10))

    def test_fewer_sources_than_shards(self):
        from repro.dist.sharding import shard_queries

        shards = shard_queries(["a", "b"], 8)
        assert len(shards) == 2

    def test_empty_and_invalid(self):
        from repro.dist.sharding import shard_queries

        assert shard_queries([], 4) == []
        with pytest.raises(ValueError):
            shard_queries(["a"], 0)

    def test_deterministic(self):
        from repro.dist.sharding import shard_queries

        sources = ["z", "m", "a", "q"]
        assert shard_queries(sources, 2) == shard_queries(
            list(reversed(sources)), 2
        )
