"""Behavioral tests for the BGP switch model (RouterNode).

Uses small hand-written snapshots so each BGP mechanism — origination,
loop prevention, split horizon, policies, aggregation, suppression,
conditional advertisement, remove-private-AS — is observable in isolation.
"""

from typing import Dict

import pytest

from repro.config.loader import make_snapshot, parse_device
from repro.net.ip import Prefix, format_ip
from repro.routing.engine import SimulationEngine
from repro.routing.route import Origin


def chain_snapshot(*device_texts: str):
    configs = {}
    for text in device_texts:
        config = parse_device(text, "ciscoish")
        configs[config.hostname] = config
    return make_snapshot(configs)


def cisco(hostname, asn, ifaces, neighbors, body=""):
    """Compact config builder: ifaces = [(name, ip, masklen)],
    neighbors = [(peer_ip, peer_asn, extra_lines)]."""
    lines = [f"hostname {hostname}"]
    for name, ip, length in ifaces:
        mask = format_ip(Prefix(Prefix.parse(ip).network, length).mask)
        lines += [f"interface {name}", f" ip address {ip} {mask}"]
    if body:
        lines.append(body.rstrip())
    lines.append(f"router bgp {asn}")
    lines.append(f" bgp router-id {format_ip(asn)}")
    for peer_ip, peer_asn, extra in neighbors:
        lines.append(f" neighbor {peer_ip} remote-as {peer_asn}")
        for line in extra:
            lines.append(f" neighbor {peer_ip} {line}")
    return "\n".join(lines) + "\n"


def two_node(a_extra="", b_extra="", a_body="", b_body="",
             a_neighbor_lines=(), b_neighbor_lines=()):
    """A --- B over 10.0.0.0/31; A announces 10.1.0.0/24."""
    a = cisco(
        "a", 65001,
        [("eth0", "10.0.0.0", 31)],
        [("10.0.0.1", 65002, list(a_neighbor_lines))],
        body=a_body,
    )
    a = a.replace(
        "router bgp 65001",
        "router bgp 65001\n network 10.1.0.0 mask 255.255.255.0"
        + (("\n" + a_extra) if a_extra else ""),
        1,
    )
    b = cisco(
        "b", 65002,
        [("eth0", "10.0.0.1", 31)],
        [("10.0.0.0", 65001, list(b_neighbor_lines))],
        body=b_body,
    )
    if b_extra:
        b = b.replace("router bgp 65002", "router bgp 65002\n" + b_extra, 1)
    return chain_snapshot(a, b)


P_A = Prefix.parse("10.1.0.0/24")


def run(snapshot):
    engine = SimulationEngine(snapshot)
    return engine, engine.run()


class TestBasicsAndOrigination:
    def test_network_statement_propagates(self):
        engine, routes = run(two_node())
        got = routes["b"][P_A]
        assert len(got) == 1
        assert got[0].as_path == (65001,)
        assert got[0].from_node == "a"

    def test_origin_is_igp_and_lp_default(self):
        _, routes = run(two_node())
        r = routes["b"][P_A][0]
        assert r.origin is Origin.IGP
        assert r.local_pref == 100

    def test_next_hop_is_session_address(self):
        _, routes = run(two_node())
        r = routes["b"][P_A][0]
        assert r.next_hop == Prefix.parse("10.0.0.0").network

    def test_originator_does_not_install_own_prefix_in_bgp_rib(self):
        _, routes = run(two_node())
        assert P_A not in routes["a"]

    def test_redistribute_connected(self):
        snap = two_node(a_extra=" redistribute connected")
        _, routes = run(snap)
        link_prefix = Prefix.parse("10.0.0.0/31")
        # b drops it: its own interface subnet is connected (AD 0), but the
        # route still traveled; check a exports it by looking at b's rib
        # candidates via a second device? Simplest: a's local prefixes.
        engine = SimulationEngine(snap)
        assert link_prefix in engine.nodes["a"].local_prefixes

    def test_session_to_absent_peer_stays_idle(self):
        a = cisco(
            "a", 65001, [("eth0", "10.0.0.0", 31)],
            [("10.0.0.1", 65002, []), ("10.99.0.1", 65099, [])],
        )
        b = cisco(
            "b", 65002, [("eth0", "10.0.0.1", 31)], [("10.0.0.0", 65001, [])]
        )
        snap = chain_snapshot(a, b)
        engine = SimulationEngine(snap)
        engine.run()
        assert len(engine.nodes["a"].sessions) == 1


class TestLoopPreventionAndSplitHorizon:
    def test_as_path_loop_rejected(self):
        # triangle a-b-c, all distinct ASNs; a's prefix comes back to a
        # via c with a's ASN in path -> dropped
        a = cisco("a", 65001, [("eth0", "10.0.0.0", 31), ("eth1", "10.0.0.4", 31)],
                  [("10.0.0.1", 65002, []), ("10.0.0.5", 65003, [])],)
        a = a.replace("router bgp 65001",
                      "router bgp 65001\n network 10.1.0.0 mask 255.255.255.0", 1)
        b = cisco("b", 65002, [("eth0", "10.0.0.1", 31), ("eth1", "10.0.0.2", 31)],
                  [("10.0.0.0", 65001, []), ("10.0.0.3", 65003, [])])
        c = cisco("c", 65003, [("eth0", "10.0.0.3", 31), ("eth1", "10.0.0.5", 31)],
                  [("10.0.0.2", 65002, []), ("10.0.0.4", 65001, [])])
        engine, routes = run(chain_snapshot(a, b, c))
        # a must not have its own prefix as a BGP candidate
        assert P_A not in routes["a"]
        # c selects the direct path from a (shorter), b likewise
        assert routes["c"][P_A][0].as_path == (65001,)

    def test_split_horizon_no_echo(self):
        engine = SimulationEngine(two_node())
        engine.run()
        node_b = engine.nodes["b"]
        session = node_b.sessions[0]
        exports = node_b.advertise(session.local_addr)
        # b's only route came from a; it must not echo it back to a
        assert all(r.prefix != P_A for r in exports)


class TestPolicies:
    def test_import_policy_sets_local_pref(self):
        snap = two_node(
            b_body=(
                "route-map IN permit 10\n"
                " set local-preference 250\n"
            ),
            b_neighbor_lines=["route-map IN in"],
        )
        _, routes = run(snap)
        assert routes["b"][P_A][0].local_pref == 250

    def test_import_policy_deny_filters(self):
        snap = two_node(
            b_body=(
                "ip prefix-list PL seq 5 permit 10.1.0.0/24\n"
                "route-map IN deny 10\n"
                " match ip address prefix-list PL\n"
                "route-map IN permit 20\n"
            ),
            b_neighbor_lines=["route-map IN in"],
        )
        _, routes = run(snap)
        assert P_A not in routes["b"]

    def test_export_policy_tags_community(self):
        snap = two_node(
            a_body=(
                "route-map OUT permit 10\n"
                " set community 65000:42 additive\n"
            ),
            a_neighbor_lines=["route-map OUT out"],
        )
        _, routes = run(snap)
        assert ((65000 << 16) | 42) in routes["b"][P_A][0].communities

    def test_export_policy_prepend(self):
        snap = two_node(
            a_body=(
                "route-map OUT permit 10\n"
                " set as-path prepend 65001 65001\n"
            ),
            a_neighbor_lines=["route-map OUT out"],
        )
        _, routes = run(snap)
        assert routes["b"][P_A][0].as_path == (65001, 65001, 65001)

    def test_as_path_overwrite_on_export(self):
        snap = two_node(
            a_body=(
                "route-map OUT permit 10\n"
                " set as-path replace any\n"
            ),
            a_neighbor_lines=["route-map OUT out"],
        )
        _, routes = run(snap)
        assert routes["b"][P_A][0].as_path == (65001,)

    def test_med_cleared_on_ebgp_export(self):
        # a sets MED via import on b? simpler: MED set at a via policy is
        # local; when b re-exports to c the MED must be 0.
        a = cisco("a", 65001, [("eth0", "10.0.0.0", 31)], [("10.0.0.1", 65002, ["route-map OUT out"])],
                  body="route-map OUT permit 10\n set metric 77\n")
        a = a.replace("router bgp 65001",
                      "router bgp 65001\n network 10.1.0.0 mask 255.255.255.0", 1)
        b = cisco("b", 65002,
                  [("eth0", "10.0.0.1", 31), ("eth1", "10.0.0.2", 31)],
                  [("10.0.0.0", 65001, []), ("10.0.0.3", 65003, [])])
        c = cisco("c", 65003, [("eth0", "10.0.0.3", 31)], [("10.0.0.2", 65002, [])])
        _, routes = run(chain_snapshot(a, b, c))
        assert routes["b"][P_A][0].med == 77   # received from a's export map
        assert routes["c"][P_A][0].med == 0    # b cleared it on re-export

    def test_remove_private_as_leading_mode(self):
        # chain: a(private 64512) -> b(public 3000) -> c: b removes private
        # on export to c; ciscoish LEADING strips 64512 before 3000? path
        # at b: (3000?, ...) — construct: a originates, path at b = (64512).
        # b exports to c with remove-private-as: strip(64512)=() then
        # prepend 3000 -> (3000,)
        a = cisco("a", 64512, [("eth0", "10.0.0.0", 31)], [("10.0.0.1", 3000, [])])
        a = a.replace("router bgp 64512",
                      "router bgp 64512\n network 10.1.0.0 mask 255.255.255.0", 1)
        b = cisco("b", 3000,
                  [("eth0", "10.0.0.1", 31), ("eth1", "10.0.0.2", 31)],
                  [("10.0.0.0", 64512, []),
                   ("10.0.0.3", 4000, ["remove-private-as"])])
        c = cisco("c", 4000, [("eth0", "10.0.0.3", 31)], [("10.0.0.2", 3000, [])])
        _, routes = run(chain_snapshot(a, b, c))
        assert routes["c"][P_A][0].as_path == (3000,)


class TestEcmp:
    def test_maximum_paths_installs_multipath(self, fattree4_sim):
        _, routes = fattree4_sim
        # an edge switch reaches a remote-pod prefix via both aggs
        remote = Prefix.parse("10.1.1.0/24")
        assert len(routes["edge-0-0"][remote]) == 2

    def test_max_paths_one_limits(self):
        # same FatTree but max_paths=1
        from repro.net.fattree import build_fattree

        snap = build_fattree(4, max_paths=1)
        _, routes = run(snap)
        remote = Prefix.parse("10.1.1.0/24")
        assert len(routes["edge-0-0"][remote]) == 1


class TestAggregation:
    def agg_snapshot(self, summary_only=True, attribute_map=False):
        """a announces 10.1.1.0/24 -> b aggregates 10.1.0.0/16 -> c."""
        extra = " summary-only" if summary_only else ""
        amap = " attribute-map TAG" if attribute_map else ""
        body = (
            "route-map TAG permit 10\n set community 65000:200 additive\n"
            if attribute_map
            else ""
        )
        a = cisco("a", 65001, [("eth0", "10.0.0.0", 31)], [("10.0.0.1", 65002, [])])
        a = a.replace("router bgp 65001",
                      "router bgp 65001\n network 10.1.1.0 mask 255.255.255.0", 1)
        b = cisco("b", 65002,
                  [("eth0", "10.0.0.1", 31), ("eth1", "10.0.0.2", 31)],
                  [("10.0.0.0", 65001, []), ("10.0.0.3", 65003, [])],
                  body=body)
        b = b.replace(
            "router bgp 65002",
            "router bgp 65002\n aggregate-address 10.1.0.0 255.255.0.0"
            + extra + amap, 1)
        c = cisco("c", 65003, [("eth0", "10.0.0.3", 31)], [("10.0.0.2", 65002, [])])
        return chain_snapshot(a, b, c)

    AGG = Prefix.parse("10.1.0.0/16")
    SPEC = Prefix.parse("10.1.1.0/24")

    def test_aggregate_activated_by_contributor(self):
        _, routes = run(self.agg_snapshot())
        assert self.AGG in routes["c"]
        assert routes["c"][self.AGG][0].as_path == (65002,)

    def test_summary_only_suppresses_specific(self):
        _, routes = run(self.agg_snapshot(summary_only=True))
        assert self.SPEC not in routes["c"]

    def test_without_summary_only_specific_leaks(self):
        _, routes = run(self.agg_snapshot(summary_only=False))
        assert self.SPEC in routes["c"]
        assert self.AGG in routes["c"]

    def test_attribute_map_tags_aggregate(self):
        _, routes = run(self.agg_snapshot(attribute_map=True))
        assert ((65000 << 16) | 200) in routes["c"][self.AGG][0].communities

    def test_aggregate_inactive_without_contributor(self):
        # no a: b has no contributor, aggregate must not appear at c
        b = cisco("b", 65002, [("eth1", "10.0.0.2", 31)], [("10.0.0.3", 65003, [])])
        b = b.replace(
            "router bgp 65002",
            "router bgp 65002\n aggregate-address 10.1.0.0 255.255.0.0 summary-only",
            1,
        )
        c = cisco("c", 65003, [("eth0", "10.0.0.3", 31)], [("10.0.0.2", 65002, [])])
        _, routes = run(chain_snapshot(b, c))
        assert self.AGG not in routes["c"]


class TestConditionalAdvertisement:
    def snapshot(self, watch_present: bool):
        a = cisco("a", 65001, [("eth0", "10.0.0.0", 31)], [("10.0.0.1", 65002, [])])
        networks = "\n network 10.2.0.0 mask 255.255.255.0"
        if watch_present:
            networks += "\n network 8.8.8.0 mask 255.255.255.0"
        a = a.replace(
            "router bgp 65001",
            "router bgp 65001" + networks
            + "\n advertise 10.2.0.0/24 exist 8.8.8.0/24",
            1,
        )
        b = cisco("b", 65002, [("eth0", "10.0.0.1", 31)], [("10.0.0.0", 65001, [])])
        return chain_snapshot(a, b)

    def test_advertised_when_watch_present(self):
        _, routes = run(self.snapshot(watch_present=True))
        assert Prefix.parse("10.2.0.0/24") in routes["b"]

    def test_withheld_when_watch_absent(self):
        _, routes = run(self.snapshot(watch_present=False))
        assert Prefix.parse("10.2.0.0/24") not in routes["b"]

    def test_non_exist_condition(self):
        a = cisco("a", 65001, [("eth0", "10.0.0.0", 31)], [("10.0.0.1", 65002, [])])
        a = a.replace(
            "router bgp 65001",
            "router bgp 65001\n network 10.2.0.0 mask 255.255.255.0"
            "\n advertise 10.2.0.0/24 non-exist 8.8.8.0/24",
            1,
        )
        b = cisco("b", 65002, [("eth0", "10.0.0.1", 31)], [("10.0.0.0", 65001, [])])
        _, routes = run(chain_snapshot(a, b))
        assert Prefix.parse("10.2.0.0/24") in routes["b"]


class TestDcnEndToEnd:
    """The §2.3 behaviors on the synthesized DCN (integration-level)."""

    def test_cross_cluster_reachability_requires_overwrite(self, dcn1_sim):
        _, routes = dcn1_sim
        # a cluster-0 TOR learns a cluster-1 VLAN despite repeated layer ASNs
        assert Prefix.parse("10.1.0.0/24") in routes["c0-t0-0"]

    def test_aggregation_hides_specifics_outside_cluster(self, dcn1_sim):
        _, routes = dcn1_sim
        tor = routes["c0-t0-0"]
        assert Prefix.parse("10.3.0.0/16") in tor
        assert Prefix.parse("10.3.0.0/24") not in tor

    def test_border_filters_management_aggregate(self, dcn1_sim):
        _, routes = dcn1_sim
        assert Prefix.parse("172.16.3.0/24") not in routes["bb-1"]
        assert Prefix.parse("10.3.0.0/16") in routes["bb-1"]

    def test_conditional_default_propagates(self, dcn1_sim):
        _, routes = dcn1_sim
        assert Prefix.parse("0.0.0.0/0") in routes["c0-t0-0"]

    def test_remove_private_as_at_border(self, dcn1_sim):
        _, routes = dcn1_sim
        # bb-1 hears the legacy cluster's VLAN from bb-0 as a candidate;
        # the selected best is via fabric (peer local-pref 80 < 100), so
        # check the path shape on a prefix-holders basis instead: the
        # candidate path via bb-0 was (4200, 3000, 64601) — leading
        # privates stripped, trailing kept (LEADING mode).
        engine, _ = dcn1_sim
        node = engine.nodes["bb-1"]
        candidates = node.rib.candidates_for(Prefix.parse("10.2.0.0/24"))
        via_peer = [r for r in candidates if r.from_node == "bb-0"]
        assert via_peer and via_peer[0].as_path == (4200, 3000, 64601)

    def test_valley_free_no_route_back_up(self, dcn1_sim):
        engine, _ = dcn1_sim
        # a cluster top must not export fabric-learned routes back to fabric
        top = engine.nodes["c0-t2-0"]
        fabric_sessions = [
            s for s in top.sessions if s.neighbor.startswith("fab-")
        ]
        assert fabric_sessions
        exports = top.advertise(fabric_sessions[0].local_addr)
        foreign = Prefix.parse("10.1.0.0/24")  # another cluster's VLAN
        assert all(r.prefix != foreign for r in exports)
