"""Unit and property tests for IPv4 primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import (
    AddressError,
    Prefix,
    format_ip,
    mask_for,
    mask_to_length,
    parse_ip,
    summarize,
)

ips = st.integers(min_value=0, max_value=(1 << 32) - 1)
lengths = st.integers(min_value=0, max_value=32)
prefixes = st.builds(Prefix, ips, lengths)


class TestParseFormat:
    def test_parse_basic(self):
        assert parse_ip("10.0.0.1") == (10 << 24) | 1

    def test_parse_zero(self):
        assert parse_ip("0.0.0.0") == 0

    def test_parse_max(self):
        assert parse_ip("255.255.255.255") == (1 << 32) - 1

    def test_format_basic(self):
        assert format_ip((192 << 24) | (168 << 16) | 5) == "192.168.0.5"

    @pytest.mark.parametrize(
        "bad", ["10.0.0", "10.0.0.0.0", "10.0.0.256", "a.b.c.d", "", "10..0.1"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_ip(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            format_ip(1 << 32)
        with pytest.raises(AddressError):
            format_ip(-1)

    @given(ips)
    def test_roundtrip(self, value):
        assert parse_ip(format_ip(value)) == value


class TestMasks:
    def test_mask_for_24(self):
        assert format_ip(mask_for(24)) == "255.255.255.0"

    def test_mask_for_0(self):
        assert mask_for(0) == 0

    def test_mask_for_32(self):
        assert mask_for(32) == (1 << 32) - 1

    def test_mask_to_length(self):
        assert mask_to_length(parse_ip("255.255.254.0")) == 23

    def test_non_contiguous_mask_rejected(self):
        with pytest.raises(AddressError):
            mask_to_length(parse_ip("255.0.255.0"))

    @given(lengths)
    def test_mask_roundtrip(self, length):
        assert mask_to_length(mask_for(length)) == length


class TestPrefix:
    def test_parse_slash(self):
        p = Prefix.parse("10.1.2.0/24")
        assert p.length == 24
        assert format_ip(p.network) == "10.1.2.0"

    def test_parse_bare_host(self):
        assert Prefix.parse("1.2.3.4").length == 32

    def test_host_bits_masked(self):
        # two spellings of the same prefix compare equal
        assert Prefix.parse("10.1.2.99/24") == Prefix.parse("10.1.2.0/24")

    def test_from_ip_mask(self):
        p = Prefix.from_ip_mask("172.16.4.0", "255.255.252.0")
        assert p == Prefix.parse("172.16.4.0/22")

    def test_str(self):
        assert str(Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_invalid_length(self):
        with pytest.raises(AddressError):
            Prefix(0, 33)

    def test_contains_ip(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains_ip(parse_ip("10.200.1.1"))
        assert not p.contains_ip(parse_ip("11.0.0.0"))

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.3.0.0/16")
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/9")
        b = Prefix.parse("10.0.0.0/8")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_supernet(self):
        assert Prefix.parse("10.1.2.0/24").supernet(16) == Prefix.parse(
            "10.1.0.0/16"
        )

    def test_supernet_rejects_longer(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/8").supernet(9)

    def test_subnets(self):
        subs = list(Prefix.parse("10.0.0.0/23").subnets(24))
        assert subs == [
            Prefix.parse("10.0.0.0/24"),
            Prefix.parse("10.0.1.0/24"),
        ]

    def test_subnets_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subnets(23))

    def test_bits(self):
        assert Prefix.parse("192.0.0.0/3").bits() == (1, 1, 0)
        assert Prefix.parse("0.0.0.0/0").bits() == ()

    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/30").num_addresses == 4

    def test_broadcast(self):
        assert (
            format_ip(Prefix.parse("10.0.0.0/24").broadcast) == "10.0.0.255"
        )

    def test_ordering_is_total(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert sorted([c, b, a]) == [a, b, c]

    @given(prefixes, prefixes)
    def test_contains_implies_overlap(self, a, b):
        if a.contains(b):
            assert a.overlaps(b)

    @given(prefixes, prefixes)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(prefixes)
    def test_parse_str_roundtrip(self, p):
        assert Prefix.parse(str(p)) == p

    @given(prefixes, st.integers(min_value=0, max_value=32))
    def test_supernet_contains(self, p, n):
        if n <= p.length:
            assert p.supernet(n).contains(p)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_bits_reconstruct_network(self, value):
        p = Prefix(value, 24)
        rebuilt = 0
        for bit in p.bits():
            rebuilt = (rebuilt << 1) | bit
        rebuilt <<= 32 - p.length
        assert rebuilt == p.network


class TestSummarize:
    def test_merges_siblings(self):
        merged = summarize(
            [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.1.0/24")]
        )
        assert merged == [Prefix.parse("10.0.0.0/23")]

    def test_drops_covered(self):
        merged = summarize(
            [Prefix.parse("10.0.0.0/8"), Prefix.parse("10.5.0.0/16")]
        )
        assert merged == [Prefix.parse("10.0.0.0/8")]

    def test_keeps_disjoint(self):
        ps = [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.2.0/24")]
        assert summarize(ps) == sorted(ps)

    def test_empty(self):
        assert summarize([]) == []

    @given(st.lists(prefixes, max_size=12))
    def test_summary_covers_inputs(self, ps):
        merged = summarize(ps)
        for p in ps:
            assert any(m.contains(p) for m in merged)

    @given(st.lists(prefixes, max_size=12))
    def test_summary_is_minimal_form(self, ps):
        merged = summarize(ps)
        # no element covers another
        for i, a in enumerate(merged):
            for j, b in enumerate(merged):
                if i != j:
                    assert not a.contains(b)
