"""Focused tests for the data-plane orchestrator's mechanics."""

import pytest

from repro.bdd.engine import BddOverflowError, TRUE
from repro.bdd.headerspace import HeaderEncoding
from repro.dataplane.forwarding import FinalState
from repro.dataplane.queries import Query
from repro.dist.controller import S2Controller, S2Options
from repro.net.ip import Prefix


@pytest.fixture(scope="module")
def controller(fattree4):
    controller = S2Controller(
        fattree4, S2Options(num_workers=4, num_shards=2)
    )
    controller.build_data_plane()
    yield controller
    controller.close()


class TestSupersteps:
    def test_supersteps_bounded_by_diameter(self, controller):
        dpo = controller.dpo
        before = dpo.stats.supersteps
        dpo.forward(["edge-0-0"], TRUE)
        steps = dpo.stats.supersteps - before
        # FatTree diameter is 4; BSP needs at most a few extra barriers
        assert 1 <= steps <= 8

    def test_queries_are_isolated(self, controller):
        """Consecutive queries must not leak finals into each other."""
        checker = controller.dpo.checker()
        q1 = Query.single_pair("edge-0-0", "edge-1-0", Prefix.parse("10.1.0.0/24"))
        q2 = Query.single_pair("edge-2-0", "edge-3-0", Prefix.parse("10.3.0.0/24"))
        r1 = checker.check_reachability(q1)
        r2 = checker.check_reachability(q2)
        assert r1.pairs() == [("edge-0-0", "edge-1-0")]
        assert r2.pairs() == [("edge-2-0", "edge-3-0")]

    def test_local_only_query_crosses_no_workers(self, fattree4):
        """With the expert scheme, intra-pod traffic that stays on one
        worker must produce zero cross-worker packets."""
        with S2Controller(
            fattree4,
            S2Options(num_workers=4, partition_scheme="expert"),
        ) as controller:
            controller.build_data_plane()
            dpo = controller.dpo
            before = dpo.stats.packets_crossed
            header = controller.options.encoding.prefix_bdd(
                dpo.engine, Prefix.parse("10.0.1.0/24")
            )
            finals = dpo.forward(["edge-0-0"], header)
            assert any(f.state is FinalState.ARRIVE for f in finals)
            assert dpo.stats.packets_crossed == before

    def test_finals_collected_from_every_worker(self, controller):
        dpo = controller.dpo
        finals = dpo.forward(["edge-0-0"], TRUE)
        arrival_nodes = {
            f.node for f in finals if f.state is FinalState.ARRIVE
        }
        owners = {
            controller.partition.assignment[node] for node in arrival_nodes
        }
        assert owners == {0, 1, 2, 3}


class TestPerWorkerEngines:
    def test_each_worker_has_private_engine(self, controller):
        engines = {id(w.engine) for w in controller.workers}
        assert len(engines) == 4
        assert all(w.engine.node_count > 2 for w in controller.workers)

    def test_worker_engine_smaller_than_monolithic(
        self, controller, fattree4, fattree4_sim
    ):
        """§4.3: per-worker node tables are smaller than one shared table."""
        from repro.dataplane.verifier import DataPlaneVerifier

        engine, routes = fattree4_sim
        mono = DataPlaneVerifier.from_simulation(engine, routes)
        mono.compile_predicates()
        for worker in controller.workers:
            assert worker.engine.node_count < mono.engine.node_count

    def test_worker_bdd_overflow_surfaces(self, fattree4):
        with S2Controller(
            fattree4,
            S2Options(num_workers=2, node_limit=32, worker_capacity=1 << 62),
        ) as controller:
            with pytest.raises(BddOverflowError):
                controller.build_data_plane()


class TestEncodingPlumbing:
    def test_custom_encoding_reaches_workers(self, fattree4):
        encoding = HeaderEncoding(fields=("dst", "proto"), metadata_bits=1)
        with S2Controller(
            fattree4, S2Options(num_workers=2, encoding=encoding)
        ) as controller:
            controller.build_data_plane()
            assert controller.dpo.engine.num_vars == encoding.num_vars
            for worker in controller.workers:
                assert worker.engine.num_vars == encoding.num_vars

    def test_waypoint_bits_cleared_between_queries(self, fattree4):
        encoding = HeaderEncoding(metadata_bits=1)
        with S2Controller(
            fattree4, S2Options(num_workers=2, encoding=encoding)
        ) as controller:
            checker = controller.checker()
            q = Query(
                sources=("edge-0-0",),
                destinations=("edge-1-0",),
                transits=("edge-1-0",),
                header_space=Prefix.parse("10.1.0.0/24"),
            )
            assert checker.check_waypoint(q) == {"edge-1-0": []}
            # a plain reachability query afterwards must not have stale
            # write rules installed anywhere
            controller.dpo.install_waypoints(())
            assert all(
                not (w.context and w.context.waypoint_bits)
                for w in controller.workers
            )


class TestEngineMemoryManagement:
    def test_worker_node_counts_flat_across_repeated_queries(self, fattree4):
        """Between-query GC must keep per-worker node tables flat instead
        of monotonically growing with the query count."""
        with S2Controller(
            fattree4, S2Options(num_workers=4, num_shards=2)
        ) as controller:
            controller.build_data_plane()
            dpo = controller.dpo
            counts = []
            for _ in range(5):
                dpo.forward(["edge-0-0"], TRUE)
                counts.append(
                    max(w.engine.node_count for w in controller.workers)
                )
            # The first query may allocate fresh structure; after that the
            # footprint must stabilize (GC at each reset boundary).
            assert counts[1:] == [counts[1]] * len(counts[1:])
            gc_runs = sum(
                c.get("gc_runs", 0)
                for c in dpo.worker_engine_counters()
            )
            assert gc_runs > 0

    def test_predicates_survive_gc(self, fattree4):
        """Query results must be identical before and after collections
        (the predicate roots and their remapped ids stay correct)."""
        with S2Controller(
            fattree4, S2Options(num_workers=4, num_shards=2)
        ) as controller:
            controller.build_data_plane()
            checker = controller.dpo.checker()
            q = Query.single_pair(
                "edge-0-0", "edge-1-0", Prefix.parse("10.1.0.0/24")
            )
            first = checker.check_reachability(q).pairs()
            for _ in range(3):
                controller.dpo.forward(["edge-2-0"], TRUE)
            assert checker.check_reachability(q).pairs() == first

    def test_engine_counters_exposed(self, controller):
        controller.dpo.forward(["edge-0-0"], TRUE)
        for counters in controller.dpo.worker_engine_counters():
            assert counters["node_count"] > 2
            assert 0.0 <= counters["cache_hit_rate"] <= 1.0
        assert controller.dpo.stats.peak_worker_nodes > 2


class TestSendDedup:
    def test_repeated_query_dedups_cross_worker_payloads(self, fattree4):
        with S2Controller(
            fattree4, S2Options(num_workers=4, num_shards=2)
        ) as controller:
            controller.build_data_plane()
            dpo = controller.dpo
            dpo.forward(["edge-0-0"], TRUE)
            baseline = sum(
                s.dedup_counters()["hits"] for s in dpo.sidecars
            )
            dpo.forward(["edge-0-0"], TRUE)
            after = sum(s.dedup_counters()["hits"] for s in dpo.sidecars)
            # The identical query re-crosses the same worker boundaries
            # with the identical symbolic packets.
            assert after > baseline
            assert dpo.stats.dedup_bytes_saved > 0

    def test_dedup_does_not_change_finals(self, fattree4):
        results = []
        for dedup in (True, False):
            with S2Controller(
                fattree4, S2Options(num_workers=4, num_shards=2)
            ) as controller:
                controller.build_data_plane()
                dpo = controller.dpo
                for sidecar in dpo.sidecars:
                    sidecar.dedup_packets = dedup
                finals = dpo.forward(["edge-0-0"], TRUE)
                results.append(
                    sorted(
                        (f.state.value, f.node, dpo.engine.sat_count(f.bdd))
                        for f in finals
                    )
                )
        assert results[0] == results[1]

    def test_dedup_reduces_charged_bytes(self, fattree4):
        """The second identical query must charge fewer RPC bytes than
        the first (references instead of full node lists)."""
        with S2Controller(
            fattree4, S2Options(num_workers=4, num_shards=2)
        ) as controller:
            controller.build_data_plane()
            dpo = controller.dpo

            def total_rpc_bytes():
                return sum(
                    w.resources.rpc_bytes_sent for w in controller.workers
                )

            before_first = total_rpc_bytes()
            dpo.forward(["edge-0-0"], TRUE)
            first = total_rpc_bytes() - before_first
            before_second = total_rpc_bytes()
            dpo.forward(["edge-0-0"], TRUE)
            second = total_rpc_bytes() - before_second
            assert 0 < second < first
