"""Tests for the what-if layer: change review and link-failure sweeps."""

import pytest

from repro.core.analysis import (
    LinkFailureAnalyzer,
    ReachabilityMatrix,
    compare_snapshots,
    compute_matrix,
    without_link,
)
from repro.dist.controller import S2Options
from repro.net.fattree import build_fattree
from repro.net.ip import Prefix


@pytest.fixture(scope="module")
def ft4_matrix(fattree4):
    return compute_matrix(fattree4, options=S2Options(num_workers=2))


class TestMatrix:
    def test_full_mesh_on_healthy_fattree(self, ft4_matrix):
        assert len(ft4_matrix.endpoints) == 8
        assert len(ft4_matrix) == 64
        assert ft4_matrix.holds("edge-0-0", "edge-3-1")

    def test_diff_identity(self, ft4_matrix):
        diff = ft4_matrix.diff(ft4_matrix)
        assert not diff.breaks_anything
        assert diff.summary() == "no reachability change"

    def test_diff_direction(self):
        a = ReachabilityMatrix(("x", "y"), frozenset([("x", "y")]))
        b = ReachabilityMatrix(("x", "y"), frozenset([("y", "x")]))
        diff = a.diff(b)
        assert diff.lost == (("x", "y"),)
        assert diff.gained == (("y", "x"),)
        assert "1 pairs lost, 1 pairs gained" == diff.summary()


class TestWithoutLink:
    def test_link_removed_from_topology(self, fattree4):
        link = next(iter(fattree4.topology.links()))
        failed = without_link(fattree4, link)
        assert failed.topology.link_between(link.a.node, link.b.node) is None
        # original untouched
        assert (
            fattree4.topology.link_between(link.a.node, link.b.node)
            is not None
        )

    def test_annotations_preserved(self, fattree4):
        link = next(iter(fattree4.topology.links()))
        failed = without_link(fattree4, link)
        assert failed.topology.node("edge-0-0").role == "edge"
        assert failed.topology.node("edge-0-0").pod == 0


class TestCompareSnapshots:
    def test_detects_withdrawn_prefix(self, fattree4):
        import copy

        from repro.config.loader import make_snapshot

        before = fattree4
        configs = copy.deepcopy(fattree4.configs)
        configs["edge-2-0"].bgp.networks = []
        after = make_snapshot(configs, name="after")
        after.metadata.update(before.metadata)
        diff = compare_snapshots(before, after)
        assert diff.breaks_anything
        # every pair from *other* edges into edge-2-0 is gone; the
        # self-pair survives via the connected link subnets (the full
        # header-space flood still arrives at its own interfaces)
        assert all(dst == "edge-2-0" for _src, dst in diff.lost)
        assert len(diff.lost) == 7

    def test_no_change_no_diff(self, fattree4):
        diff = compare_snapshots(fattree4, build_fattree(4))
        assert not diff.breaks_anything
        assert diff.gained == ()


class TestLinkFailures:
    def test_fattree_single_link_failures_are_safe(self, fattree4):
        """k=4 keeps all-pair reachability under any single link failure
        (ECMP reroutes) — every link report must be 'safe'."""
        analyzer = LinkFailureAnalyzer(
            fattree4, options=S2Options(num_workers=2)
        )
        links = list(fattree4.topology.links())[:6]  # a representative slice
        reports = analyzer.sweep(links)
        assert all(r.is_safe for r in reports), [
            (r.link, r.status) for r in reports if not r.is_safe
        ]

    def test_stub_link_failure_breaks_pairs(self):
        """On a line topology a--b--c every link is a single point of
        failure: the sweep must flag both."""
        from repro.config.loader import make_snapshot, parse_device

        def dev(name, asn, ifaces, neighbors, network=None):
            lines = [f"hostname {name}"]
            for iname, ip in ifaces:
                lines += [
                    f"interface {iname}",
                    f" ip address {ip} 255.255.255.254",
                ]
            lines.append(f"router bgp {asn}")
            for peer, pasn in neighbors:
                lines.append(f" neighbor {peer} remote-as {pasn}")
            if network:
                lines.append(f" network {network} mask 255.255.255.0")
            return parse_device("\n".join(lines) + "\n", "ciscoish")

        a = dev("a", 65001, [("e0", "10.0.0.0")], [("10.0.0.1", 65002)],
                network="10.1.0.0")
        b = dev(
            "b", 65002,
            [("e0", "10.0.0.1"), ("e1", "10.0.0.2")],
            [("10.0.0.0", 65001), ("10.0.0.3", 65003)],
        )
        c = dev("c", 65003, [("e0", "10.0.0.3")], [("10.0.0.2", 65002)],
                network="10.3.0.0")
        snapshot = make_snapshot({"a": a, "b": b, "c": c})
        analyzer = LinkFailureAnalyzer(
            snapshot, options=S2Options(num_workers=1)
        )
        reports = analyzer.fragile_links()
        assert len(reports) == 2
        assert all(r.status == "breaks" for r in reports)
        worst = reports[0]
        assert ("a", "c") in worst.lost_pairs or ("c", "a") in worst.lost_pairs
