"""Tests for FIB construction and longest-prefix-match lookup."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane.fib import (
    Fib,
    FibAction,
    FibEntry,
    NextHop,
    NextHopResolver,
    build_fib,
)
from repro.net.ip import Prefix
from repro.routing.engine import SimulationEngine
from repro.routing.route import BgpRoute, Protocol, Route


def entry(prefix_text, action=FibAction.FORWARD, hops=("eth0",)):
    return FibEntry(
        prefix=Prefix.parse(prefix_text),
        action=action,
        next_hops=tuple(NextHop(iface=h, node=f"via-{h}") for h in hops)
        if action is FibAction.FORWARD
        else (),
    )


class TestTrie:
    def test_lookup_longest_match(self):
        fib = Fib("r")
        fib.add(entry("10.0.0.0/8", hops=("a",)))
        fib.add(entry("10.1.0.0/16", hops=("b",)))
        fib.add(entry("10.1.2.0/24", hops=("c",)))
        assert fib.lookup(Prefix.parse("10.1.2.3").network).next_hops[0].iface == "c"
        assert fib.lookup(Prefix.parse("10.1.9.9").network).next_hops[0].iface == "b"
        assert fib.lookup(Prefix.parse("10.9.9.9").network).next_hops[0].iface == "a"

    def test_lookup_miss(self):
        fib = Fib("r")
        fib.add(entry("10.0.0.0/8"))
        assert fib.lookup(Prefix.parse("11.0.0.0").network) is None

    def test_default_route_matches_everything(self):
        fib = Fib("r")
        fib.add(entry("0.0.0.0/0", hops=("d",)))
        assert fib.lookup(0).next_hops[0].iface == "d"
        assert fib.lookup((1 << 32) - 1).next_hops[0].iface == "d"

    def test_replacement(self):
        fib = Fib("r")
        fib.add(entry("10.0.0.0/8", hops=("a",)))
        fib.add(entry("10.0.0.0/8", hops=("b",)))
        assert len(fib) == 1
        assert fib.lookup(Prefix.parse("10.0.0.1").network).next_hops[0].iface == "b"

    def test_entries_sorted_most_specific_first(self):
        fib = Fib("r")
        fib.add(entry("10.0.0.0/8"))
        fib.add(entry("10.1.2.0/24"))
        fib.add(entry("10.1.0.0/16"))
        lengths = [e.prefix.length for e in fib.entries()]
        assert lengths == [24, 16, 8]

    def test_entry_for(self):
        fib = Fib("r")
        fib.add(entry("10.0.0.0/8"))
        assert fib.entry_for(Prefix.parse("10.0.0.0/8")) is not None
        assert fib.entry_for(Prefix.parse("10.0.0.0/9")) is None

    @given(
        st.lists(
            st.tuples(
                st.integers(0, (1 << 32) - 1), st.integers(0, 32)
            ),
            min_size=1,
            max_size=20,
        ),
        st.integers(0, (1 << 32) - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_lookup_matches_bruteforce(self, raw_prefixes, probe):
        fib = Fib("r")
        prefixes = [Prefix(n, l) for n, l in raw_prefixes]
        for i, prefix in enumerate(prefixes):
            fib.add(
                FibEntry(
                    prefix=prefix,
                    action=FibAction.FORWARD,
                    next_hops=(NextHop(iface=f"e{i}", node="x"),),
                )
            )
        got = fib.lookup(probe)
        matching = [p for p in set(prefixes) if p.contains_ip(probe)]
        if not matching:
            assert got is None
        else:
            best = max(matching, key=lambda p: p.length)
            assert got.prefix == best


class TestBuildFib:
    @pytest.fixture(scope="class")
    def env(self, fattree4_sim, fattree4):
        engine, routes = fattree4_sim
        resolver = NextHopResolver.from_snapshot(fattree4)
        return engine, routes, resolver

    def test_local_prefix_receives(self, env):
        engine, routes, resolver = env
        node = engine.nodes["edge-0-0"]
        fib = build_fib("edge-0-0", node.local_prefixes, [], routes["edge-0-0"], resolver)
        own = next(iter(node.local_prefixes))
        assert fib.entry_for(own).action is FibAction.RECEIVE

    def test_bgp_ecmp_installs_multiple_hops(self, env):
        engine, routes, resolver = env
        node = engine.nodes["edge-0-0"]
        fib = build_fib("edge-0-0", node.local_prefixes, [], routes["edge-0-0"], resolver)
        remote = Prefix.parse("10.1.1.0/24")
        fib_entry = fib.entry_for(remote)
        assert fib_entry.action is FibAction.FORWARD
        assert len(fib_entry.next_hops) == 2
        assert {h.node for h in fib_entry.next_hops} == {"agg-0-0", "agg-0-1"}

    def test_connected_beats_bgp(self, env):
        engine, routes, resolver = env
        prefix = Prefix.parse("10.5.0.0/24")
        connected = Route(
            prefix=prefix, protocol=Protocol.CONNECTED, admin_distance=0
        )
        bgp = {
            prefix: (
                BgpRoute(prefix=prefix, next_hop=1, from_node="x"),
            )
        }
        fib = build_fib("edge-0-0", frozenset(), [connected], bgp, resolver)
        assert fib.entry_for(prefix).action is FibAction.RECEIVE

    def test_static_beats_bgp(self, env):
        engine, routes, resolver = env
        prefix = Prefix.parse("10.5.0.0/24")
        static = Route(
            prefix=prefix,
            protocol=Protocol.STATIC,
            admin_distance=1,
            discard=True,
        )
        node = engine.nodes["edge-0-0"]
        session_peer = node.sessions[0].peer_ip
        bgp = {
            prefix: (
                BgpRoute(prefix=prefix, next_hop=session_peer, from_node="agg-0-0"),
            )
        }
        fib = build_fib("edge-0-0", frozenset(), [static], bgp, resolver)
        assert fib.entry_for(prefix).action is FibAction.DROP

    def test_discard_static_becomes_drop(self, env):
        _, _, resolver = env
        prefix = Prefix.parse("192.168.0.0/16")
        static = Route(
            prefix=prefix, protocol=Protocol.STATIC, discard=True,
            admin_distance=1,
        )
        fib = build_fib("edge-0-0", frozenset(), [static], {}, resolver)
        assert fib.entry_for(prefix).action is FibAction.DROP

    def test_unresolvable_next_hop_becomes_drop(self, env):
        _, _, resolver = env
        prefix = Prefix.parse("10.5.0.0/24")
        bgp = {
            prefix: (
                BgpRoute(prefix=prefix, next_hop=12345, from_node="nowhere"),
            )
        }
        fib = build_fib("edge-0-0", frozenset(), [], bgp, resolver)
        assert fib.entry_for(prefix).action is FibAction.DROP

    def test_resolver_maps_addresses(self, env, fattree4):
        _, _, resolver = env
        link = next(iter(fattree4.topology.links()))
        a_addr = fattree4.topology.interface_address(link.a)
        hop = resolver.resolve(link.b.node, a_addr)
        assert hop is not None
        assert hop.node == link.a.node
        assert hop.iface == link.b.interface

    def test_resolver_unknown_address(self, env):
        _, _, resolver = env
        assert resolver.resolve("edge-0-0", 999) is None
