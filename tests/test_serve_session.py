"""The resident verifier behind ``repro serve``.

The central claims under test:

* **Delta equivalence** — a session that absorbs config/link deltas
  produces bit-identical RIBs and reachability verdicts to a cold-start
  run of the final snapshot, whether the delta took the incremental
  (announce-only) or the full-recompute path.
* **Incrementality** — a single-device announce delta recomputes
  strictly fewer shards than the full run, carrying converged clean
  shards across the epoch by fingerprint.
* **Self-healing** — a worker holding a stale epoch is rejected by the
  ``begin_shard`` fence and recovered; queries during a recompute read
  the previous committed epoch; a full admission queue sheds load with
  a typed refusal; a terminal recompute failure degrades the session to
  read-only instead of corrupting it.
"""

from __future__ import annotations

import threading

import pytest

from repro.config.loader import snapshot_from_texts
from repro.dataplane.queries import Query
from repro.dist.controller import S2Controller, S2Options
from repro.net.fattree import FatTreeSpec, render_configs
from repro.serve import (
    ConfigTextDelta,
    DeltaError,
    LinkDelta,
    SessionBusyError,
    SessionDegradedError,
    UnknownEndpointError,
    VerifierSession,
)

from tests.conftest import normalize_ribs

NUM_WORKERS = 2
NUM_SHARDS = 8


def _options(**overrides) -> S2Options:
    defaults = dict(num_workers=NUM_WORKERS, num_shards=NUM_SHARDS)
    defaults.update(overrides)
    return S2Options(**defaults)


@pytest.fixture(scope="module")
def ft4_texts():
    return render_configs(FatTreeSpec(k=4))


@pytest.fixture(scope="module")
def ft4(ft4_texts):
    return snapshot_from_texts(ft4_texts, name="ft4-serve")


@pytest.fixture(scope="module")
def announce_host(ft4_texts):
    """The first device that actually announces networks (an edge
    switch — agg/core have no ``network`` statements)."""
    return sorted(
        host
        for host, (_dialect, text) in ft4_texts.items()
        if any(
            line.strip().startswith("network ")
            for line in text.splitlines()
        )
    )[0]


def _with_extra_network(text: str) -> str:
    """The device's config with one more announced network."""
    lines = text.splitlines()
    last_net = max(
        index
        for index, line in enumerate(lines)
        if line.strip().startswith("network ")
    )
    lines.insert(last_net + 1, " network 203.0.113.0 mask 255.255.255.0")
    return "\n".join(lines)


def _without_networks(text: str) -> str:
    return "\n".join(
        line
        for line in text.splitlines()
        if not line.strip().startswith("network ")
    )


def _oracle(snapshot):
    """Cold-start RIBs + reachability pairs for ``snapshot``."""
    with S2Controller(snapshot, _options()) as controller:
        controller.run_control_plane()
        endpoints = tuple(controller.prefix_holders())
        result = controller.checker().check_reachability(
            Query(sources=endpoints, destinations=endpoints)
        )
        return (
            normalize_ribs(controller.collected_ribs()),
            frozenset(result.pairs()),
        )


def _assert_equivalent(session: VerifierSession) -> None:
    """The session's committed view matches a cold start of its
    current snapshot, bit for bit."""
    oracle_ribs, oracle_pairs = _oracle(session.snapshot)
    view = session.reachability()
    assert normalize_ribs(view.ribs) == oracle_ribs
    assert view.pairs == oracle_pairs


# -- boot and reads ---------------------------------------------------------


def test_cold_boot_serves_cold_start_verdicts(ft4):
    with VerifierSession(ft4, _options()) as session:
        health = session.health()
        assert health["status"] == "serving"
        assert health["epoch"] == 0
        assert not health["warm_boot"]
        _assert_equivalent(session)
        view = session.reachability()
        src, dst = sorted(view.endpoints)[:2]
        result = session.query(src, dst)
        assert result.holds == ((src, dst) in view.pairs)
        assert result.epoch == 0
        assert not result.degraded
        routes = session.routes(src)
        assert routes and all(count >= 1 for count in routes.values())


def test_unknown_endpoint_is_a_typed_refusal(ft4):
    with VerifierSession(ft4, _options()) as session:
        with pytest.raises(UnknownEndpointError):
            session.query("no-such-node", "also-missing")
        with pytest.raises(UnknownEndpointError):
            session.routes("no-such-node")


# -- the incremental path ---------------------------------------------------


def test_announce_delta_recomputes_strictly_fewer_shards(
    ft4, ft4_texts, announce_host
):
    """The acceptance criterion: one device's announce change recomputes
    only the dirty shards — strictly fewer than the full run — and the
    result is bit-identical to a cold start of the new snapshot."""
    dialect, text = ft4_texts[announce_host]
    with VerifierSession(ft4, _options()) as session:
        total = len(session._controller.shards)
        result = session.apply_delta(
            ConfigTextDelta(
                hostname=announce_host,
                text=_with_extra_network(text),
                dialect=dialect,
            ),
            timeout=300,
        )
        assert result.kind == "announce"
        assert result.epoch == 1
        assert result.dirty_prefixes >= 1
        assert 1 <= result.shards_recomputed < total
        assert result.shards_reused >= 1
        assert result.shards_recomputed + result.shards_reused == len(
            session._controller.shards
        )
        assert not result.sequential_fallback
        _assert_equivalent(session)


def test_withdraw_delta_loses_pairs_and_stays_equivalent(
    ft4, ft4_texts, announce_host
):
    dialect, text = ft4_texts[announce_host]
    with VerifierSession(ft4, _options()) as session:
        before = session.reachability()
        result = session.apply_delta(
            ConfigTextDelta(
                hostname=announce_host,
                text=_without_networks(text),
                dialect=dialect,
            ),
            timeout=300,
        )
        assert result.kind == "announce"
        # The host stopped announcing: every pair involving it is gone.
        assert result.lost_pairs
        assert all(
            announce_host in pair for pair in result.lost_pairs
        )
        assert announce_host not in session.reachability().endpoints
        assert announce_host in before.endpoints
        _assert_equivalent(session)


def test_reapplying_the_same_config_is_a_cheap_epoch(
    ft4, ft4_texts, announce_host
):
    dialect, text = ft4_texts[announce_host]
    with VerifierSession(ft4, _options()) as session:
        before = session.reachability()
        result = session.apply_delta(
            ConfigTextDelta(
                hostname=announce_host, text=text, dialect=dialect
            ),
            timeout=300,
        )
        assert result.kind == "announce"
        assert result.shards_recomputed == 0
        assert result.dirty_prefixes == 0
        assert not result.lost_pairs and not result.gained_pairs
        after = session.reachability()
        assert after.epoch == 1
        assert after.pairs == before.pairs
        assert normalize_ribs(after.ribs) == normalize_ribs(before.ribs)


# -- the full-recompute path ------------------------------------------------


def test_link_down_then_up_round_trips(ft4):
    link = next(iter(ft4.topology.links()))
    a, b = link.a.node, link.b.node
    with VerifierSession(ft4, _options()) as session:
        baseline = session.reachability()
        down = session.apply_delta(LinkDelta(a=a, b=b), timeout=300)
        assert down.kind == "full"
        assert down.epoch == 1
        _assert_equivalent(session)
        up = session.apply_delta(LinkDelta(a=a, b=b, up=True), timeout=300)
        assert up.kind == "full"
        assert up.epoch == 2
        after = session.reachability()
        assert after.pairs == baseline.pairs
        assert normalize_ribs(after.ribs) == normalize_ribs(baseline.ribs)


def test_unknown_link_is_rejected_without_degrading(ft4):
    with VerifierSession(ft4, _options()) as session:
        with pytest.raises(DeltaError):
            session.apply_delta(
                LinkDelta(a="nope-0", b="nope-1"), timeout=300
            )
        assert not session.degraded
        assert session.health()["status"] == "serving"
        assert session.epoch == 0


def test_wrong_hostname_in_config_delta_is_rejected(
    ft4, ft4_texts, announce_host
):
    _dialect, text = ft4_texts[announce_host]
    with VerifierSession(ft4, _options()) as session:
        with pytest.raises(DeltaError):
            session.apply_delta(
                ConfigTextDelta(hostname="not-in-snapshot", text=text),
                timeout=300,
            )
        assert session.health()["status"] == "serving"


# -- self-healing -----------------------------------------------------------


def test_stale_epoch_worker_is_fenced_and_recovered(ft4):
    """A worker that misses the epoch seed (here: its ``begin_epoch``
    drops the first call) is rejected by the ``begin_shard`` fence,
    routed through supervisor recovery, re-seeded, and the shard
    replays — with verdicts identical to the healthy run."""
    link = next(iter(ft4.topology.links()))
    with VerifierSession(ft4, _options()) as session:
        worker = session._controller.workers[1]
        real_begin_epoch = worker.begin_epoch
        dropped = []

        def drop_first_seed(epoch):
            if not dropped:
                dropped.append(epoch)
                return None
            return real_begin_epoch(epoch)

        worker.begin_epoch = drop_first_seed
        result = session.apply_delta(
            LinkDelta(a=link.a.node, b=link.b.node), timeout=300
        )
        supervisor = session._controller.supervisor
        assert dropped, "the faulty seed never fired"
        assert supervisor.stale_epoch_rejections >= 1
        assert supervisor.recoveries >= 1
        assert result.epoch == 1
        assert not session.degraded
        _assert_equivalent(session)


def test_queries_read_the_committed_epoch_during_recompute(
    ft4, ft4_texts, announce_host
):
    dialect, text = ft4_texts[announce_host]
    with VerifierSession(ft4, _options()) as session:
        controller = session._controller
        entered = threading.Event()
        release = threading.Event()
        real_run = controller.run_control_plane

        def paused_run():
            entered.set()
            assert release.wait(timeout=60)
            return real_run()

        controller.run_control_plane = paused_run
        view = session.reachability()
        src, dst = sorted(view.endpoints)[:2]
        future = session.submit_delta(
            ConfigTextDelta(
                hostname=announce_host,
                text=_with_extra_network(text),
                dialect=dialect,
            )
        )
        assert entered.wait(timeout=60)
        # Mid-recompute: reads are served from epoch 0, untorn.
        mid = session.query(src, dst)
        assert mid.epoch == 0
        assert session.health()["status"] == "recomputing"
        release.set()
        result = future.result(timeout=300)
        assert result.epoch == 1
        assert session.query(src, dst).epoch == 1


def test_full_admission_queue_sheds_with_busy(
    ft4, ft4_texts, announce_host
):
    dialect, text = ft4_texts[announce_host]

    def delta():
        return ConfigTextDelta(
            hostname=announce_host, text=text, dialect=dialect
        )

    with VerifierSession(ft4, _options(), queue_limit=1) as session:
        gate = threading.Event()
        real_apply = session._apply

        def gated_apply(item):
            assert gate.wait(timeout=60)
            return real_apply(item)

        session._apply = gated_apply
        first = session.submit_delta(delta())
        # Wait for the mutator to take the first delta off the queue,
        # then fill the single admission slot.
        deadline = threading.Event()
        for _ in range(600):
            if session._queue.empty():
                break
            deadline.wait(0.05)
        assert session._queue.empty()
        second = session.submit_delta(delta())
        with pytest.raises(SessionBusyError):
            session.submit_delta(delta())
        gate.set()
        assert first.result(timeout=300).epoch == 1
        assert second.result(timeout=300).epoch == 2


def test_loss_during_reconfigure_commits_at_reduced_capacity(ft4):
    """A host lost while a full-recompute delta is mid-``reconfigure``:
    the delta's epoch still commits on the survivors — the session never
    goes read-only while at least one worker is up — and the verdicts
    match a cold start of the new snapshot."""
    from repro.dist.faults import FaultPlan, FaultSpec

    link = next(iter(ft4.topology.links()))
    # An armed plan with no specs yet: boot runs fault-free, then the
    # loss is primed to fire inside the delta's recompute.
    plan = FaultPlan([])
    with VerifierSession(
        ft4, _options(fault_plan=plan, runtime="process")
    ) as session:
        assert session.health()["capacity"]["lost_workers"] == 0
        plan.add(
            FaultSpec(
                kind="host_loss", worker=1, command="pull_round",
                heal_after=100,
            )
        )
        result = session.apply_delta(
            LinkDelta(a=link.a.node, b=link.b.node), timeout=300
        )
        assert plan.count("host_loss") == 1, "the loss never fired"
        assert result.epoch == 1
        assert not result.sequential_fallback
        assert not session.degraded
        health = session.health()
        assert health["status"] == "serving"
        assert health["capacity"]["lost_workers"] == 1
        assert health["workers"] == NUM_WORKERS - 1
        _assert_equivalent(session)
        kinds = [event.kind for event in session.journal.tail(100)]
        assert "worker_lost" in kinds
        assert "epoch_commit" in kinds


def test_healed_host_is_rebalanced_back_at_an_epoch_boundary(ft4):
    """Once the blacklisted host heals, the heal prober rejoins it via
    the mutator queue: capacity returns to 1.0 as a fresh committed
    epoch, and the verdicts survive the loss *and* the rejoin."""
    import time as _time

    from repro.dist.faults import FaultPlan, FaultSpec

    # heal_after=2 == the respawn budget: dead long enough to be
    # declared lost at boot, healed by the time the prober dials.
    plan = FaultPlan(
        [
            FaultSpec(
                kind="host_loss", worker=1, command="pull_round",
                heal_after=2,
            )
        ]
    )
    with VerifierSession(
        ft4, _options(fault_plan=plan, runtime="process")
    ) as session:
        assert session.health()["capacity"]["lost_workers"] == 1
        deadline = _time.time() + 60
        while _time.time() < deadline:
            health = session.health()
            if (
                health["capacity"]["lost_workers"] == 0
                and health["epoch"] >= 1
            ):
                break
            _time.sleep(0.1)
        health = session.health()
        assert health["capacity"] == {
            "active_workers": NUM_WORKERS,
            "lost_workers": 0,
            "capacity_ratio": 1.0,
            "lost": {},
        }
        assert health["epoch"] >= 1  # the rebalance was an epoch event
        assert not session.degraded
        _assert_equivalent(session)
        kinds = [event.kind for event in session.journal.tail(100)]
        assert "worker_lost" in kinds
        assert "worker_rejoined" in kinds


def test_terminal_failure_degrades_to_read_only(
    ft4, ft4_texts, announce_host
):
    """When the degradation ladder is exhausted the session turns
    read-only on the previous epoch instead of serving torn state."""
    dialect, text = ft4_texts[announce_host]
    with VerifierSession(ft4, _options()) as session:
        view = session.reachability()
        src, dst = sorted(view.endpoints)[:2]
        expected = session.query(src, dst).holds

        def explode():
            raise RuntimeError("data plane rebuild failed terminally")

        session._controller.rebuild_data_plane = explode
        with pytest.raises(RuntimeError):
            session.apply_delta(
                ConfigTextDelta(
                    hostname=announce_host,
                    text=_with_extra_network(text),
                    dialect=dialect,
                ),
                timeout=300,
            )
        health = session.health()
        assert health["status"] == "degraded"
        assert "RuntimeError" in health["degraded_reason"]
        # Reads keep answering from the last committed epoch...
        result = session.query(src, dst)
        assert result.epoch == 0
        assert result.holds == expected
        assert result.degraded
        # ...and writes are refused with the typed error.
        with pytest.raises(SessionDegradedError):
            session.submit_delta(
                ConfigTextDelta(
                    hostname=announce_host, text=text, dialect=dialect
                )
            )
