"""Tests for snapshot loading: directories, topology derivation, round trips."""

import os

import pytest

from repro.config.lexer import ConfigSyntaxError
from repro.config.loader import (
    Snapshot,
    derive_topology,
    load_snapshot_dir,
    make_snapshot,
    parse_device,
    write_snapshot_dir,
)
from repro.net.dcn import render_configs as render_dcn, default_spec
from repro.net.fattree import FatTreeSpec, render_configs as render_fattree
from repro.net.ip import Prefix


class TestTopologyDerivation:
    def test_p2p_subnet_creates_one_link(self):
        a = parse_device(
            "hostname a\ninterface e0\n ip address 10.0.0.0 255.255.255.254\n"
        )
        b = parse_device(
            "hostname b\ninterface e0\n ip address 10.0.0.1 255.255.255.254\n"
        )
        topology = derive_topology({"a": a, "b": b})
        assert len(list(topology.links())) == 1
        assert topology.neighbors("a") == ["b"]

    def test_lan_subnet_links_pairwise(self):
        configs = {}
        for i, name in enumerate(("a", "b", "c")):
            configs[name] = parse_device(
                f"hostname {name}\ninterface e0\n"
                f" ip address 10.0.0.{i + 1} 255.255.255.0\n"
            )
        topology = derive_topology(configs)
        assert len(list(topology.links())) == 3  # triangle

    def test_shutdown_interface_excluded(self):
        a = parse_device(
            "hostname a\ninterface e0\n"
            " ip address 10.0.0.0 255.255.255.254\n shutdown\n"
        )
        b = parse_device(
            "hostname b\ninterface e0\n ip address 10.0.0.1 255.255.255.254\n"
        )
        topology = derive_topology({"a": a, "b": b})
        assert len(list(topology.links())) == 0

    def test_lonely_subnet_no_link(self):
        a = parse_device(
            "hostname a\ninterface e0\n ip address 10.0.0.1 255.255.255.0\n"
        )
        topology = derive_topology({"a": a})
        assert len(list(topology.links())) == 0


class TestSnapshotDirRoundTrip:
    def test_fattree_write_and_load(self, tmp_path):
        texts = render_fattree(FatTreeSpec(k=4, juniper_fraction=0.25))
        write_snapshot_dir(str(tmp_path), texts)
        files = os.listdir(tmp_path / "configs")
        assert any(f.endswith(".cfg") for f in files)
        assert any(f.endswith(".conf") for f in files)
        snapshot = load_snapshot_dir(str(tmp_path))
        assert len(snapshot) == 20
        assert snapshot.topology.is_connected()
        snapshot.topology.validate()

    def test_dcn_write_and_load(self, tmp_path):
        texts = render_dcn(default_spec(1))
        write_snapshot_dir(str(tmp_path), texts)
        snapshot = load_snapshot_dir(str(tmp_path))
        assert len(snapshot) == len(texts)
        assert snapshot.validate() == {}

    def test_loaded_equals_generated_routes(self, tmp_path, fattree4,
                                            fattree4_sim):
        """A snapshot loaded from disk simulates identically to the one
        built in memory."""
        from repro.routing.engine import SimulationEngine
        from tests.conftest import normalize_ribs

        texts = render_fattree(FatTreeSpec(k=4))
        write_snapshot_dir(str(tmp_path), texts)
        loaded = load_snapshot_dir(str(tmp_path))
        engine = SimulationEngine(loaded)
        _, expected = fattree4_sim
        assert normalize_ribs(engine.run()) == normalize_ribs(expected)

    def test_duplicate_hostname_rejected(self, tmp_path):
        os.makedirs(tmp_path / "configs")
        for name in ("x1.cfg", "x2.cfg"):
            with open(tmp_path / "configs" / name, "w") as handle:
                handle.write("hostname dup\n")
        with pytest.raises(ConfigSyntaxError):
            load_snapshot_dir(str(tmp_path))

    def test_flat_directory_accepted(self, tmp_path):
        with open(tmp_path / "a.cfg", "w") as handle:
            handle.write(
                "hostname a\ninterface e0\n"
                " ip address 10.0.0.0 255.255.255.254\n"
            )
        snapshot = load_snapshot_dir(str(tmp_path))
        assert "a" in snapshot.configs

    def test_non_config_files_skipped(self, tmp_path):
        os.makedirs(tmp_path / "configs")
        with open(tmp_path / "configs" / "README.md", "w") as handle:
            handle.write("# not a config\n")
        with open(tmp_path / "configs" / "a.cfg", "w") as handle:
            handle.write("hostname a\n")
        snapshot = load_snapshot_dir(str(tmp_path))
        assert list(snapshot.configs) == ["a"]


class TestSnapshotApi:
    def test_validate_aggregates_problems(self):
        broken = parse_device(
            "hostname broken\n"
            "router bgp 1\n"
            " neighbor 1.2.3.4 remote-as 2\n"
            " neighbor 1.2.3.4 route-map MISSING in\n"
        )
        snapshot = make_snapshot({"broken": broken})
        problems = snapshot.validate()
        assert "broken" in problems

    def test_len(self, fattree4):
        assert len(fattree4) == 20

    def test_metadata(self, fattree4, dcn1):
        assert fattree4.metadata["kind"] == "fattree"
        assert dcn1.metadata["kind"] == "dcn"


class TestMixedVendorFatTree:
    def test_mixed_vendors_converge_identically(self, fattree4_sim):
        """A FatTree with 25% juniperish switches computes the same routes
        as the all-cisco one — the vendor frontends are interchangeable."""
        from repro.net.fattree import build_fattree
        from repro.routing.engine import SimulationEngine
        from tests.conftest import normalize_ribs

        mixed = build_fattree(4, juniper_fraction=0.25)
        vendors = {c.behavior.vendor for c in mixed.configs.values()}
        assert vendors == {"ciscoish", "juniperish"}
        engine = SimulationEngine(mixed)
        _, expected = fattree4_sim
        assert normalize_ribs(engine.run()) == normalize_ribs(expected)
