"""Fault injection, supervision, recovery, and checkpoint/resume.

The central claim under test: a run that loses workers mid-computation —
to crashes, stalled calls, dropped or duplicated sidecar batches —
produces **bit-identical** RIBs and verdicts to the fault-free run,
because recovery respawns the worker, replays the OSPF checkpoint, and
reruns the interrupted shard (which ``begin_shard`` makes idempotent).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro import FaultPlan, FaultSpec, RetryPolicy, S2Options, S2Verifier
from repro.dist.controller import S2Controller, options_fingerprint
from repro.dist.faults import (
    InjectedWorkerCrash,
    TransientRpcError,
    WorkerDiedError,
    WorkerFailure,
)
from repro.dist.message import RouteBatch
from repro.dist.storage import CorruptShardError, RouteStore, RunManifest
from repro.routing.engine import ConvergenceError

from tests.conftest import normalize_ribs

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

RUNTIMES = ["sequential", "threaded", "process", "socket"]
# One crash per pipeline stage: BGP phase A, BGP phase B, the shard
# flush, the data-plane build, and the forwarding superstep.
CRASH_SITES = [
    "compute_exports",
    "pull_round",
    "flush_shard",
    "build_dataplane",
    "drain",
]


def _options(**overrides) -> S2Options:
    defaults = dict(num_workers=3, num_shards=2)
    defaults.update(overrides)
    return S2Options(**defaults)


@pytest.fixture(scope="module")
def baseline(fattree4):
    """Fault-free verdicts + RIBs to compare every faulted run against."""
    with S2Verifier(fattree4, _options()) as verifier:
        result = verifier.verify()
        ribs = normalize_ribs(verifier.collected_ribs())
    assert result.status == "ok"
    return result, ribs


# -- the fault matrix -------------------------------------------------------


@pytest.mark.parametrize("runtime", RUNTIMES)
@pytest.mark.parametrize("site", CRASH_SITES)
def test_crash_recovery_matrix(site, runtime, fattree4, baseline):
    """A worker crash at any stage, under any runtime, is invisible in
    the results: same reachability verdicts, same RIBs."""
    base_result, base_ribs = baseline
    plan = FaultPlan([FaultSpec(kind="crash", worker=1, command=site)])
    options = _options(runtime=runtime, fault_plan=plan)
    with S2Verifier(fattree4, options) as verifier:
        result = verifier.verify()
        ribs = normalize_ribs(verifier.collected_ribs())
        report = verifier.controller.report()
    assert plan.count("crash") == 1, "the injected crash never fired"
    assert result.status == "ok"
    assert result.reachable_pairs == base_result.reachable_pairs
    assert result.checked_pairs == base_result.checked_pairs
    assert ribs == base_ribs
    # The stats must confess: a failure happened and a worker came back.
    cp, dp = result.cp_stats, result.dp_stats
    assert cp.worker_failures + dp.worker_failures >= 1
    assert report.total_respawns >= 1
    if site in ("compute_exports", "pull_round", "flush_shard"):
        assert cp.shard_replays >= 1
    if site == "drain":
        assert dp.query_replays >= 1


@pytest.mark.parametrize("runtime", ["sequential", "process", "socket"])
def test_dropped_and_duplicated_batches(runtime, fattree4, baseline):
    """Lost sidecar batches heal (exports are re-sent every round) and
    duplicated ones are discarded by sequence-number dedup."""
    base_result, base_ribs = baseline
    plan = FaultPlan(
        [
            FaultSpec(kind="drop", worker=0, times=2),
            FaultSpec(kind="duplicate", worker=2, times=2),
        ]
    )
    with S2Verifier(fattree4, _options(runtime=runtime, fault_plan=plan)) as v:
        result = v.verify()
        ribs = normalize_ribs(v.collected_ribs())
    assert result.status == "ok"
    assert ribs == base_ribs
    assert result.reachable_pairs == base_result.reachable_pairs
    assert result.cp_stats.batches_dropped == 2
    assert result.cp_stats.batches_duplicated == 2
    assert result.cp_stats.duplicates_discarded == 2


def test_drop_in_final_round_forces_extra_round(fattree4, fattree4_sim):
    """The premature-convergence hazard: a batch dropped in the round
    where every worker reports 'no change' must not end the fixed point
    on a stale mailbox.  The CPO forces one extra round."""
    _, oracle = fattree4_sim
    with S2Controller(fattree4, S2Options(num_workers=3)) as c:
        rounds = c.run_control_plane().bgp_rounds
    plan = FaultPlan([FaultSpec(kind="drop", round=rounds - 1)])
    with S2Controller(
        fattree4, S2Options(num_workers=3, fault_plan=plan)
    ) as c:
        stats = c.run_control_plane()
        ribs = normalize_ribs(c.collected_ribs())
    assert plan.count("drop") == 1
    assert stats.forced_rounds >= 1
    assert stats.bgp_rounds > rounds
    assert ribs == normalize_ribs(oracle)


def test_transient_rpc_errors_are_retried(fattree4, baseline):
    """Injected transient failures are absorbed by the backoff retry
    loop without ever reaching shard-level recovery."""
    _, base_ribs = baseline
    plan = FaultPlan(
        [FaultSpec(kind="error", worker=1, command="compute_exports", times=2)]
    )
    policy = RetryPolicy(backoff_base=0.001)
    with S2Controller(
        fattree4,
        _options(runtime="process", fault_plan=plan, retry_policy=policy),
    ) as c:
        stats = c.run_control_plane()
        ribs = normalize_ribs(c.collected_ribs())
        report = c.report()
    assert ribs == base_ribs
    assert report.total_retries == 2
    assert stats.worker_failures == 0
    assert stats.shard_replays == 0


def test_crash_after_send_is_recovered(fattree4, baseline):
    """A worker killed *after* the request was written to its pipe dies
    mid-command; the proxy reports it and recovery replays the shard."""
    _, base_ribs = baseline
    plan = FaultPlan(
        [
            FaultSpec(
                kind="crash",
                worker=2,
                command="pull_round",
                where="after_send",
            )
        ]
    )
    with S2Controller(
        fattree4, _options(runtime="process", fault_plan=plan)
    ) as c:
        stats = c.run_control_plane()
        ribs = normalize_ribs(c.collected_ribs())
    assert stats.worker_failures >= 1
    assert ribs == base_ribs


def test_transient_respawn_failure_heals_within_budget(fattree4, baseline):
    """One failed respawn is *not* a lost worker: the budget (default 2)
    covers it, the second attempt succeeds, and the run stays fully
    distributed with identical RIBs."""
    _, base_ribs = baseline
    plan = FaultPlan(
        [
            FaultSpec(kind="crash", worker=1, command="pull_round"),
            FaultSpec(kind="respawn_fail", worker=1),
        ]
    )
    with S2Controller(
        fattree4, _options(runtime="process", fault_plan=plan)
    ) as c:
        stats = c.run_control_plane()
        ribs = normalize_ribs(c.collected_ribs())
        capacity = c.capacity()
        respawns = c.report().total_respawns
    assert not stats.sequential_fallback
    assert stats.workers_lost == 0
    assert capacity["lost_workers"] == 0
    assert respawns >= 1
    assert ribs == base_ribs


@pytest.mark.parametrize("runtime", ["process", "socket"])
def test_respawn_failure_degrades_to_sequential(runtime, fattree4, baseline):
    """When *every* worker's host dies permanently there is nobody left
    to adopt the shards: the controller falls back to the monolithic
    engine and still produces identical RIBs."""
    _, base_ribs = baseline
    plan = FaultPlan(
        [
            FaultSpec(
                kind="host_loss", worker=w, command="pull_round",
                heal_after=100,
            )
            for w in range(3)
        ]
    )
    with S2Controller(
        fattree4, _options(runtime=runtime, fault_plan=plan)
    ) as c:
        stats = c.run_control_plane()
        ribs = normalize_ribs(c.collected_ribs())
    assert stats.sequential_fallback
    assert ribs == base_ribs


# -- permanent loss: shard reassignment ------------------------------------


@pytest.mark.parametrize("runtime", RUNTIMES)
@pytest.mark.parametrize("site", ["compute_exports", "pull_round", "drain"])
def test_permanent_loss_matrix(site, runtime, fattree4, baseline):
    """Killing one worker's host for good — mid-BGP-round or mid-query —
    migrates its shards to the survivors and the run completes
    *distributed* (no sequential fallback) with bit-identical results."""
    base_result, base_ribs = baseline
    plan = FaultPlan(
        [
            FaultSpec(
                kind="host_loss", worker=1, command=site, heal_after=100
            )
        ]
    )
    options = _options(runtime=runtime, fault_plan=plan)
    with S2Verifier(fattree4, options) as verifier:
        result = verifier.verify()
        ribs = normalize_ribs(verifier.collected_ribs())
        capacity = verifier.controller.capacity()
    cp_stats = result.cp_stats
    assert plan.count("host_loss") == 1, "the injected loss never fired"
    assert result.status == "ok"
    assert not cp_stats.sequential_fallback
    assert cp_stats.workers_lost == 1
    assert capacity["active_workers"] == 2
    assert capacity["lost_workers"] == 1
    assert capacity["capacity_ratio"] == pytest.approx(2 / 3)
    assert result.reachable_pairs == base_result.reachable_pairs
    assert ribs == base_ribs
    if site == "drain":
        # The loss hit after the shards were flushed, so the survivors
        # adopted real store files.
        assert cp_stats.shards_reassigned >= 1


def test_loss_mid_ospf_is_bit_identical():
    """A host lost during the OSPF phase: the survivors replay the union
    of the checkpoints and converge to the same mixed OSPF+BGP RIBs."""
    from tests.test_distributed_ospf import mixed_snapshot

    snapshot = mixed_snapshot()
    options = S2Options(num_workers=2, num_shards=2)
    with S2Controller(snapshot, options) as c:
        c.run_control_plane()
        base_ribs = normalize_ribs(c.collected_ribs())
    plan = FaultPlan(
        [
            FaultSpec(
                kind="host_loss", worker=1, command="pull_ospf_round",
                heal_after=100,
            )
        ]
    )
    with S2Controller(
        snapshot,
        S2Options(num_workers=2, num_shards=2, fault_plan=plan),
    ) as c:
        stats = c.run_control_plane()
        ribs = normalize_ribs(c.collected_ribs())
        capacity = c.capacity()
    assert plan.count("host_loss") == 1, "the OSPF-phase loss never fired"
    assert not stats.sequential_fallback
    assert capacity["lost_workers"] == 1
    assert ribs == base_ribs


def test_lost_worker_rejoins_after_heal(fattree4, baseline):
    """Once the blacklisted host heals, ``rejoin_worker`` rebalances the
    shards back across the full fleet — and the RIBs survive the loss
    *and* the rejoin untouched."""
    _, base_ribs = baseline
    # heal_after=2 == the respawn budget: the host is dead long enough
    # to be declared lost, then heals.
    plan = FaultPlan(
        [
            FaultSpec(
                kind="host_loss", worker=1, command="pull_round",
                heal_after=2,
            )
        ]
    )
    with S2Controller(
        fattree4, _options(runtime="process", fault_plan=plan)
    ) as c:
        stats = c.run_control_plane()
        assert not stats.sequential_fallback
        assert c.capacity() == {
            "active_workers": 2,
            "lost_workers": 1,
            "capacity_ratio": pytest.approx(2 / 3),
            "lost": {"1": c.lost_reasons[1]},
        }
        assert c.rejoin_worker(1)
        capacity = c.capacity()
        assert capacity["active_workers"] == 3
        assert capacity["lost_workers"] == 0
        assert set(c.partition.assignment.values()) == {0, 1, 2}
        assert normalize_ribs(c.collected_ribs()) == base_ribs


def test_loss_freezes_worker_accounting(fattree4):
    """A lost worker's resource totals and transport counters stay in
    the report — frozen at their last values and tagged ``lost`` — so
    the communication bill never silently shrinks."""
    plan = FaultPlan(
        [
            FaultSpec(
                kind="host_loss", worker=1, command="pull_round",
                heal_after=100,
            )
        ]
    )
    with S2Controller(
        fattree4, _options(runtime="socket", fault_plan=plan)
    ) as c:
        c.run_control_plane()
        report = c.report()
        snapshot = c.metrics_snapshot()
    assert len(report.workers) == 3       # nobody vanishes from the bill
    workers = {entry["name"]: entry for entry in snapshot["workers"]}
    assert workers["worker1"]["lost"] and not workers["worker0"]["lost"]
    assert snapshot["capacity"]["lost_workers"] == 1
    transport = snapshot["transport"]
    assert transport["worker1"].get("lost")
    assert not transport["worker0"].get("lost")
    assert "lost" not in transport["total"]


def test_unrecoverable_dataplane_failure_is_reported(fattree4):
    """A worker that crashes on *every* build attempt exhausts the query
    retry budget; verify() reports it instead of raising."""
    plan = FaultPlan(
        [FaultSpec(kind="crash", worker=0, command="build_dataplane", times=0)]
    )
    with S2Verifier(fattree4, _options(fault_plan=plan)) as verifier:
        result = verifier.verify()
    assert result.status == "worker-failure"
    assert result.error


# -- kill-and-resume --------------------------------------------------------

_KILL_SCRIPT = """
import os, sys
sys.path.insert(0, {src!r})
from repro import FaultPlan, FaultSpec, RetryPolicy, S2Options
from repro.dist.controller import S2Controller
from repro.dist.faults import WorkerFailure
from repro.net.fattree import build_fattree

snapshot = build_fattree(4)
# Crash worker 1 on every round of shard 2, with no recovery budget: the
# run dies after shards 0 and 1 were flushed and recorded.
plan = FaultPlan([FaultSpec(
    kind="crash", worker=1, shard=2, command="pull_round", times=0)])
options = S2Options(
    num_workers=3, num_shards=4, store_dir={store!r},
    fault_plan=plan, retry_policy=RetryPolicy(max_shard_retries=0))
controller = S2Controller(snapshot, options)
try:
    controller.cpo.run(controller.shards)
except WorkerFailure:
    os._exit(9)   # hard kill: no close(), no teardown, like a power cut
os._exit(1)
"""


def test_kill_and_resume_roundtrip(fattree4, fattree4_sim, tmp_path):
    """A run hard-killed mid-way resumes from its manifest: converged
    shards are skipped, only the remainder is recomputed, and the final
    RIBs match the monolithic oracle exactly."""
    _, oracle = fattree4_sim
    store = str(tmp_path / "spool")
    script = _KILL_SCRIPT.format(src=SRC_DIR, store=store)
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, timeout=240
    )
    assert proc.returncode == 9, proc.stderr.decode()[-2000:]

    options = S2Options(num_workers=3, num_shards=4, store_dir=store)
    with S2Controller.resume(fattree4, options) as controller:
        manifest_before = controller.manifest.completed_shards()
        stats = controller.run_control_plane()
        ribs = normalize_ribs(controller.collected_ribs())
        manifest_after = controller.store.read_manifest()
    assert manifest_before == [0, 1]
    assert stats.shards_skipped == 2
    assert stats.shards_run == 2          # only the interrupted remainder
    assert stats.ospf_restored
    assert ribs == normalize_ribs(oracle)
    assert manifest_after.completed_shards() == [0, 1, 2, 3]


def test_resume_refuses_incompatible_options(fattree4, tmp_path):
    store = str(tmp_path / "spool")
    with S2Controller(
        fattree4, S2Options(num_workers=3, num_shards=4, store_dir=store)
    ) as controller:
        controller.run_control_plane()
    with pytest.raises(ValueError, match="incompatible options"):
        S2Controller.resume(
            fattree4, S2Options(num_workers=2, num_shards=4, store_dir=store)
        )


def test_resume_requires_manifest(fattree4, tmp_path):
    with pytest.raises(ValueError, match="nothing to resume"):
        S2Controller.resume(
            fattree4, S2Options(store_dir=str(tmp_path / "empty"))
        )
    with pytest.raises(ValueError, match="store_dir"):
        S2Controller.resume(fattree4, S2Options())


def test_resume_of_completed_run_skips_everything(fattree4, tmp_path):
    store = str(tmp_path / "spool")
    with S2Controller(
        fattree4, S2Options(num_workers=3, num_shards=4, store_dir=store)
    ) as controller:
        controller.run_control_plane()
        ribs = normalize_ribs(controller.collected_ribs())
    options = S2Options(num_workers=3, num_shards=4, store_dir=store)
    with S2Controller.resume(fattree4, options) as controller:
        stats = controller.run_control_plane()
        assert stats.shards_skipped == 4
        assert stats.shards_run == 0
        assert stats.bgp_rounds == 0
        assert normalize_ribs(controller.collected_ribs()) == ribs


def test_fresh_run_clears_stale_store(fattree4, tmp_path):
    """A *fresh* run over a reused spool directory must not inherit the
    previous run's shards (or its manifest)."""
    store = str(tmp_path / "spool")
    with S2Controller(
        fattree4, S2Options(num_workers=3, num_shards=4, store_dir=store)
    ) as controller:
        controller.run_control_plane()
    with S2Controller(
        fattree4, S2Options(num_workers=3, num_shards=4, store_dir=store)
    ) as controller:
        assert controller.manifest.completed_shards() == []
        stats = controller.run_control_plane()
        assert stats.shards_run == 4      # nothing skipped: it recomputed


def test_options_fingerprint_ignores_supervision_knobs(fattree4):
    base = S2Options(num_workers=3, num_shards=4)
    tweaked = S2Options(
        num_workers=3,
        num_shards=4,
        runtime="process",
        fault_plan=FaultPlan([FaultSpec(kind="crash")]),
        retry_policy=RetryPolicy(call_timeout=1.0),
    )
    different = S2Options(num_workers=3, num_shards=8)
    assert options_fingerprint(base, fattree4) == options_fingerprint(
        tweaked, fattree4
    )
    assert options_fingerprint(base, fattree4) != options_fingerprint(
        different, fattree4
    )


# -- storage: crash-safe writes --------------------------------------------


def test_write_shard_is_atomic_and_leaves_no_temp_files(tmp_path):
    store = RouteStore(str(tmp_path))
    store.write_shard(0, 0, {"leaf1": {}})
    store.write_shard(0, 0, {"leaf1": {}})  # overwrite goes through temp
    names = os.listdir(str(tmp_path))
    assert "worker000-shard0000.rib" in names
    assert not [n for n in names if ".tmp." in n]
    assert store.read_shard(0, 0) == {"leaf1": {}}


def test_corrupt_shard_file_is_reported_with_path(tmp_path):
    store = RouteStore(str(tmp_path))
    store.write_shard(0, 0, {})
    path = os.path.join(str(tmp_path), "worker000-shard0000.rib")
    with open(path, "wb") as handle:
        handle.write(b"\x80\x04 torn write garbage")
    with pytest.raises(CorruptShardError) as excinfo:
        store.read_shard(0, 0)
    assert excinfo.value.path == path
    assert path in str(excinfo.value)


def test_manifest_roundtrip(tmp_path):
    store = RouteStore(str(tmp_path))
    manifest = RunManifest(options_hash="abc123", seed=7, num_workers=3)
    manifest.mark_shard(0, rounds=5)
    manifest.ospf_done = True
    store.write_manifest(manifest)
    loaded = store.read_manifest()
    assert loaded.options_hash == "abc123"
    assert loaded.ospf_done
    assert loaded.is_shard_done(0)
    assert not loaded.is_shard_done(1)
    assert loaded.completed_shards() == [0]


# -- fault plan / spec units -----------------------------------------------


def test_fault_spec_parse():
    spec = FaultSpec.parse("crash:worker=1,round=3,command=pull_round")
    assert (spec.kind, spec.worker, spec.round) == ("crash", 1, 3)
    assert spec.command == "pull_round"
    spec = FaultSpec.parse("delay:delay=0.5,times=0,probability=0.25")
    assert (spec.delay, spec.times, spec.probability) == (0.5, 0, 0.25)
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec.parse("meteor:worker=1")
    with pytest.raises(ValueError, match="unknown fault option"):
        FaultSpec.parse("crash:planet=earth")


def test_fault_plan_respects_times_and_context():
    plan = FaultPlan(
        [FaultSpec(kind="crash", worker=1, shard=1, command="pull_round")]
    )
    plan.set_context(shard=0, round_token=0)
    assert plan.on_phase(1, "pull_round", 0) is None   # wrong shard
    plan.set_context(shard=1)
    assert plan.on_phase(0, "pull_round", 0) is None   # wrong worker
    assert plan.on_phase(1, "compute_exports", 0) is None  # wrong site
    assert plan.on_phase(1, "pull_round", 0) is not None
    assert plan.on_phase(1, "pull_round", 1) is None   # times=1 exhausted
    assert plan.count("crash") == 1


def test_retry_policy_backoff_grows_exponentially():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(3) == pytest.approx(0.4)


def test_worker_dedupes_batches_by_sequence(fattree4):
    from repro.dist.worker import Worker

    assignment = {name: 0 for name in fattree4.configs}
    worker = Worker(0, fattree4, assignment)
    batch = RouteBatch(
        source_worker=1,
        target_worker=0,
        round_token=0,
        exports={("leaf1", 1): []},
        sequence=7,
    )
    worker.deliver_routes(batch)
    worker.deliver_routes(batch)  # redelivery of the same sequence
    assert worker.duplicate_batches == 1
    assert worker.fault_counters()["duplicate_batches"] == 1


def test_sidecar_dedup_cache_cleared_on_peer_respawn(fattree4):
    """A respawned peer has no receive-side dedup memory, so the sender's
    content-hash cache toward it must be dropped — otherwise payloads
    would travel as digest references the fresh incarnation can't resolve
    (and the sender's communication bill would be under-charged)."""
    from types import SimpleNamespace

    from repro.dist.message import PacketBatch, PacketEnvelope
    from repro.dist.sidecar import Sidecar
    from repro.dist.worker import Worker

    assignment = {name: 0 for name in fattree4.configs}
    sidecar = Sidecar(Worker(0, fattree4, assignment))
    peer = SimpleNamespace(
        worker_id=1,
        worker=SimpleNamespace(deliver_packets=lambda batch: None),
    )
    sidecar.register_peers([peer])

    # A synthetic but structurally valid serialized BDD: 40 one-level
    # nodes whose children are the terminal slots.
    payload = (32, 2, tuple((i % 32, 0, 1) for i in range(40)))
    batch = PacketBatch(
        source_worker=0,
        target_worker=1,
        envelopes=(
            PacketEnvelope(
                payload=payload,
                node="leaf1",
                in_port="eth0",
                hops=0,
                source="leaf1",
            ),
        ),
    )
    first = sidecar.send_packets(batch)
    second = sidecar.send_packets(batch)      # dedup: digest reference
    assert second < first
    assert 1 in sidecar._packet_dedup

    sidecar.on_peer_respawn(1)                # peer came back empty
    assert 1 not in sidecar._packet_dedup
    third = sidecar.send_packets(batch)       # full payload again
    assert third == first

    sidecar.send_packets(batch)
    sidecar.invalidate_send_caches()
    assert sidecar._packet_dedup == {}


def test_in_process_crash_raises_worker_failure(fattree4):
    from repro.dist.worker import Worker

    assignment = {name: 0 for name in fattree4.configs}
    worker = Worker(0, fattree4, assignment)
    worker.fault_injector = FaultPlan(
        [FaultSpec(kind="crash", command="compute_exports")]
    )
    with pytest.raises(InjectedWorkerCrash) as excinfo:
        worker.compute_exports(0)
    assert isinstance(excinfo.value, WorkerFailure)
    assert excinfo.value.worker_id == 0
    assert excinfo.value.command == "compute_exports"


# -- process pool supervision ----------------------------------------------


def test_pool_detects_and_respawns_dead_worker(fattree4):
    with S2Controller(fattree4, _options(runtime="process")) as controller:
        pool = controller._pool
        assert pool.dead_workers() == []
        assert pool.ping_all() == []
        victim = pool.proxies[1]
        victim._process.kill()
        victim._process.join(5.0)
        assert pool.dead_workers() == [1]
        with pytest.raises(WorkerDiedError):
            victim.ping()
        pool.respawn(1)
        assert pool.dead_workers() == []
        assert victim.ping()                      # same proxy object
        assert victim.resources.respawns == 1


def test_pool_close_leaves_no_processes(fattree4):
    controller = S2Controller(fattree4, _options(runtime="process"))
    processes = [proxy._process for proxy in controller._pool.proxies]
    assert all(process.is_alive() for process in processes)
    controller.close()
    assert not any(process.is_alive() for process in processes)
    controller.close()  # idempotent


def test_poisoned_proxy_refuses_calls_until_revived(fattree4):
    with S2Controller(fattree4, _options(runtime="process")) as controller:
        proxy = controller._pool.proxies[0]
        proxy._poisoned = True                    # as a timeout would
        assert not proxy.is_alive()
        with pytest.raises(WorkerDiedError, match="poisoned"):
            proxy.ping()
        controller._pool.respawn(0)
        assert proxy.ping()


# -- enriched ConvergenceError ---------------------------------------------


def test_convergence_error_carries_context():
    error = ConvergenceError(
        "BGP did not converge within 5 rounds",
        shard_index=3,
        rounds=5,
        still_changing={1: ["leaf1", "spine2"]},
    )
    assert error.shard_index == 3
    assert error.rounds == 5
    assert error.still_changing == {1: ["leaf1", "spine2"]}
    text = str(error)
    assert "shard=3" in text and "worker1" in text and "leaf1" in text


def test_distributed_non_convergence_names_the_culprits(fattree4):
    with S2Controller(
        fattree4, S2Options(num_workers=3, max_rounds=2)
    ) as controller:
        with pytest.raises(ConvergenceError) as excinfo:
            controller.cpo.run()
    assert excinfo.value.rounds == 2
    assert excinfo.value.still_changing  # someone was still flapping


# -- CLI --------------------------------------------------------------------


def test_cli_inject_fault_and_store_dir(tmp_path, capsys):
    from repro.cli import main

    store = str(tmp_path / "spool")
    code = main(
        [
            "verify",
            "fattree",
            "--k",
            "4",
            "--workers",
            "3",
            "--shards",
            "2",
            "--store-dir",
            store,
            "--inject-fault",
            "crash:worker=1,command=pull_round",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "OK" in out
    assert "fault tolerance:" in out
    assert "1 worker failures" in out
    assert os.path.exists(os.path.join(store, "manifest.json"))
    # and the persisted run resumes cleanly from the CLI too
    code = main(
        [
            "verify",
            "fattree",
            "--k",
            "4",
            "--workers",
            "3",
            "--shards",
            "2",
            "--store-dir",
            store,
            "--resume",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "2 shards skipped" in out
