"""Differential testing of the flat BDD kernel against the dict kernel.

The flat kernel (:mod:`repro.bdd.flat`) is a from-scratch rewrite of
the node table and op caches; its only acceptable observable difference
from the reference dict engine is speed.  Node *ids* are allowed to
differ (allocation order depends on cache hits), so equivalence is
checked on the canonical form: nodes relabeled in children-first
traversal order, plus the model count.

Three layers:

* a pinned 200-seed corpus of random op traces (cube / apply / not /
  ite / exists / set_var / apply_many / GC with root remapping) that
  must fingerprint identically on both kernels, forever;
* a hypothesis property: any formula tree evaluates to the same
  canonical BDD on both kernels;
* end-to-end replays of the stored fuzz corpus: the full distributed
  verifier run under each kernel must produce bit-identical RIBs and
  reachability verdicts.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.bdd.engine import (
    FALSE,
    OP_AND,
    OP_OR,
    OP_XOR,
    TRUE,
    BddEngine,
)
from repro.bdd.flat import FlatBddEngine

N_VARS = 24
PINNED_SEEDS = range(200)


def fingerprint(engine, root):
    """Kernel-independent canonical form of one BDD."""
    ids = {FALSE: 0, TRUE: 1}
    triples = []
    for node, var, low, high in engine.nodes_of(root):
        ids[node] = len(ids)
        triples.append((var, ids[low], ids[high]))
    return tuple(triples), engine.sat_count(root)


def run_trace(engine, seed: int, steps: int = 120):
    """One seeded random op trace; returns periodic fingerprints."""
    rng = random.Random(seed)
    nodes = [FALSE, TRUE]
    roots = []
    fps = []
    for step in range(steps):
        choice = rng.random()
        if choice < 0.2:
            bits = {
                rng.randrange(N_VARS): rng.random() < 0.5
                for _ in range(rng.randrange(1, 6))
            }
            nodes.append(engine.cube(bits))
        elif choice < 0.45:
            a, b = rng.choice(nodes), rng.choice(nodes)
            op = rng.choice((OP_AND, OP_OR, OP_XOR))
            nodes.append(engine.apply(op, a, b))
        elif choice < 0.6:
            nodes.append(engine.not_(rng.choice(nodes)))
        elif choice < 0.7:
            f, g, h = (rng.choice(nodes) for _ in range(3))
            nodes.append(engine.ite(f, g, h))
        elif choice < 0.8:
            nodes.append(
                engine.exists(rng.choice(nodes), rng.randrange(N_VARS))
            )
        elif choice < 0.86:
            nodes.append(
                engine.set_var(
                    rng.choice(nodes),
                    rng.randrange(N_VARS),
                    rng.random() < 0.5,
                )
            )
        elif choice < 0.93:
            ops = rng.sample(nodes, min(len(nodes), rng.randrange(2, 9)))
            nodes.append(engine.apply_many(OP_OR, ops))
        else:
            u = rng.choice(nodes)
            engine.add_root(u)
            roots.append(u)
            remap = engine.collect_garbage(extra_roots=())
            nodes = [remap.get(n, n) for n in nodes if n in remap]
            roots = [remap[r] for r in roots]
            if not nodes:
                nodes = [FALSE, TRUE]
        if step % 17 == 0 and nodes[-1] > TRUE:
            fps.append(fingerprint(engine, nodes[-1]))
    for r in roots:
        fps.append(fingerprint(engine, r))
    return fps


@pytest.mark.parametrize("seed", PINNED_SEEDS)
def test_pinned_trace_corpus(seed):
    """The 200-seed pinned corpus: bit-identical canonical results."""
    dict_fps = run_trace(BddEngine(N_VARS, node_limit=1 << 20), seed)
    flat_fps = run_trace(FlatBddEngine(N_VARS, node_limit=1 << 20), seed)
    assert dict_fps == flat_fps


# -- hypothesis property ----------------------------------------------------

from tests.test_bdd import build, formula  # noqa: E402


@settings(max_examples=60, deadline=None)
@given(formula, formula)
def test_formula_trees_agree(ta, tb):
    results = []
    for cls in (BddEngine, FlatBddEngine):
        engine = cls(12)
        a, b = build(engine, ta), build(engine, tb)
        conj = engine.and_(a, b)
        ex = engine.exists(conj, 3)
        results.append(
            (
                fingerprint(engine, a),
                fingerprint(engine, b),
                fingerprint(engine, conj),
                fingerprint(engine, engine.ite(a, b, conj)),
                fingerprint(engine, ex),
            )
        )
    assert results[0] == results[1]


def test_apply_many_matches_fold():
    for cls in (BddEngine, FlatBddEngine):
        engine = cls(N_VARS)
        rng = random.Random(11)
        operands = [
            engine.cube(
                {
                    rng.randrange(N_VARS): rng.random() < 0.5
                    for _ in range(3)
                }
            )
            for _ in range(25)
        ]
        for op in (OP_AND, OP_OR, OP_XOR):
            folded = operands[0]
            for u in operands[1:]:
                folded = engine.apply(op, folded, u)
            assert engine.apply_many(op, operands) == folded
        # Identity elements for the empty operand set.
        assert engine.apply_many(OP_AND, []) == TRUE
        assert engine.apply_many(OP_OR, []) == FALSE
        assert engine.apply_many(OP_XOR, []) == FALSE


# -- end-to-end: stored fuzz corpus, one run per kernel ---------------------


def _kernel_run(spec, kernel: str):
    from repro.dataplane.queries import Query
    from repro.dist.controller import S2Controller, S2Options
    from repro.fuzz.generators import build_snapshot
    from repro.fuzz.oracle import normalize_ribs

    snapshot = build_snapshot(spec)
    options = S2Options(
        num_workers=min(3, max(1, spec.size)),
        num_shards=3,
        partition_scheme="random",
        seed=7,
        bdd_kernel=kernel,
    )
    with S2Controller(snapshot, options) as controller:
        controller.run_control_plane()
        ribs = normalize_ribs(controller.collected_ribs())
        holders = tuple(controller.prefix_holders())
        pairs = frozenset(
            controller.checker()
            .check_reachability(
                Query(sources=holders, destinations=holders)
            )
            .pairs()
        )
    return ribs, pairs


def _equivalent_cases():
    from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, load_corpus

    return [
        case
        for case in load_corpus(DEFAULT_CORPUS_DIR)
        if case.expect == "equivalent"
    ]


@pytest.mark.parametrize(
    "case", _equivalent_cases(), ids=lambda case: case.name
)
def test_corpus_replay_is_kernel_invariant(case):
    """Full verifier runs under each kernel: bit-identical RIBs and
    reachability verdicts on every stored equivalent fuzz case."""
    spec = case.resolve_spec()
    flat_ribs, flat_pairs = _kernel_run(spec, "flat")
    dict_ribs, dict_pairs = _kernel_run(spec, "dict")
    assert flat_pairs == dict_pairs, case.name
    assert flat_ribs == dict_ribs, case.name
