"""The paper's core correctness property: S2's distributed verification
produces exactly the monolithic verifier's results — for every worker
count, partition scheme, shard count, and runtime.

(§5.3: "We run both S2 and Batfish on the real DCN ... and they output
the same set of RIBs.")
"""

import pytest

from tests.conftest import normalize_ribs
from repro.bdd.engine import FALSE
from repro.dataplane.queries import Query
from repro.dist.controller import S2Controller, S2Options
from repro.net.ip import Prefix


def s2_ribs(snapshot, **options):
    with S2Controller(snapshot, S2Options(**options)) as controller:
        controller.run_control_plane()
        return normalize_ribs(controller.collected_ribs())


class TestControlPlaneEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_fattree_worker_counts(self, fattree4, fattree4_sim, workers):
        _, expected = fattree4_sim
        got = s2_ribs(fattree4, num_workers=workers)
        assert got == normalize_ribs(expected)

    @pytest.mark.parametrize("shards", [0, 2, 5, 8])
    def test_fattree_shard_counts(self, fattree4, fattree4_sim, shards):
        _, expected = fattree4_sim
        got = s2_ribs(fattree4, num_workers=3, num_shards=shards)
        assert got == normalize_ribs(expected)

    @pytest.mark.parametrize(
        "scheme", ["metis", "random", "expert", "imbalanced", "commheavy"]
    )
    def test_fattree_partition_schemes(self, fattree4, fattree4_sim, scheme):
        _, expected = fattree4_sim
        got = s2_ribs(
            fattree4, num_workers=4, partition_scheme=scheme, num_shards=3
        )
        assert got == normalize_ribs(expected)

    @pytest.mark.parametrize("runtime", ["sequential", "threaded"])
    def test_dcn_runtimes(self, dcn1, dcn1_sim, runtime):
        _, expected = dcn1_sim
        got = s2_ribs(dcn1, num_workers=4, num_shards=6, runtime=runtime)
        assert got == normalize_ribs(expected)

    def test_dcn_many_workers(self, dcn1, dcn1_sim):
        _, expected = dcn1_sim
        got = s2_ribs(dcn1, num_workers=8, num_shards=4)
        assert got == normalize_ribs(expected)


class TestDataPlaneEquivalence:
    @pytest.fixture(scope="class")
    def mono_checker(self, fattree4_sim):
        from repro.dataplane.verifier import DataPlaneVerifier

        engine, routes = fattree4_sim
        dpv = DataPlaneVerifier.from_simulation(engine, routes)
        return dpv

    @pytest.fixture(scope="class")
    def s2_setup(self, fattree4):
        controller = S2Controller(
            fattree4, S2Options(num_workers=4, num_shards=3)
        )
        yield controller, controller.checker()
        controller.close()

    def test_all_pair_reachability_sets_equal(
        self, mono_checker, s2_setup, fattree4
    ):
        controller, s2_checker = s2_setup
        holders = controller.prefix_holders()
        query = Query(sources=tuple(holders), destinations=tuple(holders))
        mono = mono_checker.check_reachability(query)
        dist = s2_checker.check_reachability(query)
        assert set(mono.pairs()) == set(dist.pairs())
        # and the packet sets agree, compared via satisfying counts
        for pair, mono_bdd in mono.reachable.items():
            dist_bdd = dist.reachable.get(pair, FALSE)
            assert mono_checker.engine.sat_count(
                mono_bdd, 32
            ) == controller.dpo.engine.sat_count(dist_bdd, 32), pair

    def test_single_pair_agrees(self, mono_checker, s2_setup):
        _, s2_checker = s2_setup
        query = Query.single_pair(
            "edge-0-0", "edge-1-1", Prefix.parse("10.1.1.0/24")
        )
        assert mono_checker.check_reachability(query).holds(
            "edge-0-0", "edge-1-1"
        )
        assert s2_checker.check_reachability(query).holds(
            "edge-0-0", "edge-1-1"
        )

    def test_loop_free_agrees(self, mono_checker, s2_setup):
        _, s2_checker = s2_setup
        query = Query(sources=("edge-0-0",))
        assert mono_checker.checker().check_loop_free(query) == []
        assert s2_checker.check_loop_free(query) == []

    def test_cross_worker_traffic_actually_happened(self, s2_setup):
        controller, _ = s2_setup
        assert controller.dpo.stats.packets_crossed > 0
        assert controller.report().total_rpc_bytes > 0

    def test_waypoint_distributed(self, fattree4):
        from repro.bdd.headerspace import HeaderEncoding

        options = S2Options(
            num_workers=3,
            num_shards=2,
            encoding=HeaderEncoding(fields=("dst",), metadata_bits=2),
        )
        with S2Controller(fattree4, options) as controller:
            checker = controller.checker()
            # cross-pod traffic from edge-0-0 to edge-1-0's prefix must
            # traverse some aggregation switch of pod 0; but no *specific*
            # agg is a waypoint under ECMP -> expect a violation for one
            # agg, and none for the pair of them is not expressible; use
            # the destination pod's edge itself as a trivially-held
            # waypoint instead.
            query = Query(
                sources=("edge-0-0",),
                destinations=("edge-1-0",),
                transits=("edge-1-0",),
                header_space=Prefix.parse("10.1.0.0/24"),
            )
            violations = checker.check_waypoint(query)
            assert violations == {"edge-1-0": []}
            # a node in a different pod entirely is never visited
            query2 = Query(
                sources=("edge-0-0",),
                destinations=("edge-1-0",),
                transits=("edge-2-0",),
                header_space=Prefix.parse("10.1.0.0/24"),
            )
            violations2 = checker.check_waypoint(query2)
            assert violations2["edge-2-0"]
