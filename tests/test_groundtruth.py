"""The ground-truth oracle: concrete packets vs symbolic verdicts.

``repro.groundtruth`` re-implements forwarding from scratch — its own
longest-prefix match, ACL evaluation, and all-ECMP-paths walk — so that
agreement with the BDD-based verifier is evidence, not tautology.  These
tests check both directions of that bargain:

* the *independence lint*: the package must never import ``repro.bdd``
  (or anything that transitively does, like ``repro.dataplane``), and
* the *agreement property*: witness packets sampled from every query
  BDD are confirmed by the walker, near-miss packets are refuted, on
  FatTree-4, the default DCN, and a 2-DC folded Clos.
"""

from __future__ import annotations

import ast
import os
import subprocess
import sys

import repro.groundtruth
from repro.dataplane.verifier import DataPlaneVerifier
from repro.groundtruth import (
    ConcretePacket,
    GroundTruthNetwork,
    WitnessSampler,
    audit_verifier,
    audit_waypoints,
)
from repro.net.folded_clos import build_folded_clos

GROUNDTRUTH_DIR = os.path.dirname(
    os.path.abspath(repro.groundtruth.__file__)
)


# -- independence lint -------------------------------------------------------


def _imported_names(path):
    """Every module name an import statement in *path* references, with
    relative imports resolved to their ``..``-level prefix."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    names = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level >= 2:
                # ``from ..something import x`` escapes the package.
                names.append(f"<relative:{'.' * node.level}{node.module}>")
            elif node.level == 0 and node.module:
                names.append(node.module)
    return names


def test_groundtruth_never_imports_bdd_statically():
    """AST lint: no module in repro.groundtruth imports repro.bdd — or
    anything else under repro outside the package itself."""
    sources = sorted(
        entry for entry in os.listdir(GROUNDTRUTH_DIR)
        if entry.endswith(".py")
    )
    assert sources, "groundtruth package has no sources?"
    for entry in sources:
        for name in _imported_names(os.path.join(GROUNDTRUTH_DIR, entry)):
            assert not name.startswith("repro."), (
                f"{entry} imports {name!r}: the ground-truth oracle must "
                "stay independent of the symbolic stack"
            )
            assert not name.startswith("<relative:"), (
                f"{entry} has an escaping relative import {name!r}"
            )


def test_groundtruth_never_imports_bdd_at_runtime():
    """The package must execute in a fresh interpreter where ``repro``
    is not importable at all: load it under an alias with ``repro``
    absent from the path.  Any import of repro.bdd — direct, relative,
    or lazy-at-module-scope — raises ModuleNotFoundError here.

    (Importing ``repro.groundtruth`` by its real name would prove
    nothing: the parent ``repro/__init__.py`` re-exports the whole
    verifier stack, BDD engine included.)"""
    program = (
        "import importlib.util, sys\n"
        f"init = {os.path.join(GROUNDTRUTH_DIR, '__init__.py')!r}\n"
        f"pkg_dir = {GROUNDTRUTH_DIR!r}\n"
        "spec = importlib.util.spec_from_file_location(\n"
        "    'gt', init, submodule_search_locations=[pkg_dir])\n"
        "module = importlib.util.module_from_spec(spec)\n"
        "sys.modules['gt'] = module\n"
        "spec.loader.exec_module(module)\n"
        "assert module.GroundTruthNetwork is not None\n"
        "loaded = [m for m in sys.modules if m.startswith('repro')]\n"
        "assert not loaded, loaded\n"
    )
    env = {
        key: value
        for key, value in os.environ.items()
        if key != "PYTHONPATH"
    }
    result = subprocess.run(
        [sys.executable, "-c", program],
        env=env,
        cwd=os.path.dirname(GROUNDTRUTH_DIR),  # repro/ itself, not src/
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr


# -- walker unit behavior ----------------------------------------------------


def test_longest_prefix_match_and_hop_trace(fattree4, fattree4_sim):
    engine, routes = fattree4_sim
    dpv = DataPlaneVerifier.from_simulation(engine, routes)
    net = GroundTruthNetwork(fattree4, dpv.fibs)
    holders = dpv.prefix_holders()
    source, dest = holders[0], holders[-1]
    prefix = next(iter(fattree4.configs[dest].bgp.networks))
    packet = ConcretePacket(dst=int(prefix.network))
    result = net.walk(packet, source)
    assert dest in result.arrived_at()
    outcome = result.minimal_trace("arrive", dest)
    assert outcome is not None
    assert outcome.path[0] == source
    assert outcome.path[-1] == dest
    assert outcome.trace().startswith("[arrive]")


def test_walker_terminates_on_forwarding_loops():
    """Two nodes whose FIBs forward everything at each other must yield
    a LOOP verdict at max_hops, not an unbounded path explosion.  Built
    from stubs so the loop is certain, not a property of a generator."""
    from types import SimpleNamespace as NS

    def _pt(node, iface):
        return NS(node=node, interface=iface)

    snapshot = NS(
        topology=NS(links=lambda: [NS(a=_pt("a", "eth0"),
                                      b=_pt("b", "eth0"))]),
        configs={},
    )
    default_route = NS(width=32, length=0, network=0)
    bounce = NS(entries=lambda: [
        NS(prefix=default_route,
           action=NS(value="forward"),
           next_hops=[NS(iface="eth0")]),
    ])
    net = GroundTruthNetwork(snapshot, {"a": bounce, "b": bounce})
    result = net.walk(ConcretePacket(dst=0x0A000001), "a")
    assert result.states() == {"loop"}
    outcome = result.minimal_trace("loop")
    assert len(outcome.path) == net.max_hops + 1


# -- agreement properties ----------------------------------------------------


def test_fattree_witnesses_confirmed_and_near_misses_refuted(fattree4_sim):
    engine, routes = fattree4_sim
    dpv = DataPlaneVerifier.from_simulation(engine, routes)
    report = audit_verifier(dpv, seed=11, witnesses=3, near_misses=3)
    assert report.ok, report.describe()
    assert report.witnesses_confirmed > 0
    assert report.near_misses_refuted > 0
    assert report.finals_confirmed > 0


def test_dcn_witnesses_confirmed_and_near_misses_refuted(dcn1_sim):
    engine, routes = dcn1_sim
    dpv = DataPlaneVerifier.from_simulation(engine, routes)
    report = audit_verifier(dpv, seed=13, witnesses=2, near_misses=2)
    assert report.ok, report.describe()
    assert report.witnesses_confirmed > 0
    assert report.near_misses_refuted > 0


def test_audit_is_deterministic_for_a_seed(fattree4_sim):
    engine, routes = fattree4_sim
    dpv = DataPlaneVerifier.from_simulation(engine, routes)
    first = audit_verifier(dpv, seed=5, witnesses=2, near_misses=2)
    second = audit_verifier(dpv, seed=5, witnesses=2, near_misses=2)
    assert first.to_dict() == second.to_dict()


def test_waypoint_audit_agrees(fattree4_sim):
    from repro.bdd.headerspace import HeaderEncoding

    engine, routes = fattree4_sim
    dpv = DataPlaneVerifier.from_simulation(
        engine, routes, encoding=HeaderEncoding(metadata_bits=2)
    )
    holders = dpv.prefix_holders()
    transits = [
        node for node in sorted(dpv.fibs) if node not in holders
    ][:2]
    assert transits
    report = audit_waypoints(
        dpv, transits, sources=holders[:4], destinations=holders[:4]
    )
    assert report.ok, report.describe()
    assert report.pairs_checked > 0


def test_audit_catches_a_corrupted_fib(fattree4):
    """Non-vacuity: blank one *destination's* FIB after the symbolic
    predicates are compiled and the audit must report mismatches with
    hop traces.  (A blanked transit can be routed around by ECMP; a
    blanked destination cannot receive its own prefix.)"""
    from repro.routing.engine import SimulationEngine

    engine = SimulationEngine(fattree4)
    routes = engine.run()
    dpv = DataPlaneVerifier.from_simulation(engine, routes)
    dpv.compile_predicates()

    class _EmptyFib:
        def entries(self):
            return []

    victim = dpv.prefix_holders()[0]
    dpv.fibs[victim] = _EmptyFib()
    report = audit_verifier(dpv, seed=3, witnesses=2, near_misses=1)
    assert not report.ok
    assert report.mismatches
    described = report.mismatches[0].describe()
    assert "->" in described or "blackhole" in described


def test_sampler_draws_distinct_packets(fattree4_sim):
    engine, routes = fattree4_sim
    dpv = DataPlaneVerifier.from_simulation(engine, routes)
    dpv.compile_predicates()
    holders = dpv.prefix_holders()
    prefix = next(iter(dpv.snapshot.configs[holders[0]].bgp.networks))
    bdd = dpv.encoding.prefix_bdd(dpv.engine, prefix)
    sampler = WitnessSampler(dpv.engine, dpv.encoding, seed=2)
    packets = sampler.packets(bdd, 4)
    assert len({p.dst for p in packets}) == len(packets)
    for packet in packets:
        assert sampler.contains(bdd, packet)
    for packet in sampler.near_miss_packets(bdd, 4):
        assert not sampler.contains(bdd, packet)


def test_folded_clos_two_dc_audit_is_clean():
    snapshot = build_folded_clos(dcs=2, pods=2, leaves=2, spines=2)
    from repro.routing.engine import SimulationEngine

    engine = SimulationEngine(snapshot)
    routes = engine.run()
    dpv = DataPlaneVerifier.from_simulation(engine, routes)
    report = audit_verifier(dpv, seed=17, witnesses=1, near_misses=1)
    assert report.ok, report.describe()
    # cross-DC reachability is the point of the super-spine mesh
    pairs = set(dpv.all_pair_reachability().pairs())
    cross = [
        (s, d) for s, d in pairs if s.split("-")[0] != d.split("-")[0]
    ]
    assert cross, "no cross-DC reachable pairs in a 2-DC folded Clos"
