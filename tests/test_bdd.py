"""Unit and property tests for the BDD engine and serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.engine import FALSE, TRUE, BddEngine, BddOverflowError
from repro.bdd.serialize import (
    DEDUP_REF_BYTES,
    SendDedupCache,
    content_digest,
    deserialize,
    from_bytes,
    packed_size,
    serialize,
    to_bytes,
    transfer,
)

N_VARS = 12


@pytest.fixture
def engine():
    return BddEngine(N_VARS)


# A strategy for formulas: nested op trees evaluated into an engine.
formula = st.recursive(
    st.one_of(
        st.just(("const", 0)),
        st.just(("const", 1)),
        st.tuples(st.just("var"), st.integers(0, N_VARS - 1)),
        st.tuples(st.just("nvar"), st.integers(0, N_VARS - 1)),
    ),
    lambda children: st.one_of(
        st.tuples(st.just("and"), children, children),
        st.tuples(st.just("or"), children, children),
        st.tuples(st.just("xor"), children, children),
        st.tuples(st.just("not"), children),
    ),
    max_leaves=12,
)


def build(engine: BddEngine, tree) -> int:
    op = tree[0]
    if op == "const":
        return tree[1]
    if op == "var":
        return engine.var(tree[1])
    if op == "nvar":
        return engine.nvar(tree[1])
    if op == "not":
        return engine.not_(build(engine, tree[1]))
    a, b = build(engine, tree[1]), build(engine, tree[2])
    return {"and": engine.and_, "or": engine.or_, "xor": engine.xor}[op](a, b)


def evaluate(engine: BddEngine, u: int, assignment) -> bool:
    """Evaluate a BDD under a complete assignment (ground truth)."""
    while u not in (FALSE, TRUE):
        var = engine.var_of(u)
        u = engine.high_of(u) if assignment[var] else engine.low_of(u)
    return u == TRUE


class TestBasics:
    def test_terminals(self, engine):
        assert engine.and_(TRUE, TRUE) == TRUE
        assert engine.and_(TRUE, FALSE) == FALSE
        assert engine.or_(FALSE, FALSE) == FALSE
        assert engine.not_(TRUE) == FALSE

    def test_var_nvar_complement(self, engine):
        v = engine.var(3)
        assert engine.not_(v) == engine.nvar(3)
        assert engine.and_(v, engine.nvar(3)) == FALSE
        assert engine.or_(v, engine.nvar(3)) == TRUE

    def test_hash_consing_canonical(self, engine):
        a = engine.and_(engine.var(0), engine.var(1))
        b = engine.and_(engine.var(1), engine.var(0))
        assert a == b

    def test_mk_eliminates_redundant(self, engine):
        v = engine.var(5)
        assert engine.mk(2, v, v) == v

    def test_var_out_of_range(self, engine):
        with pytest.raises(ValueError):
            engine.var(N_VARS)
        with pytest.raises(ValueError):
            engine.nvar(-1)

    def test_cube(self, engine):
        u = engine.cube({0: True, 3: False})
        assert u == engine.and_(engine.var(0), engine.nvar(3))

    def test_ite(self, engine):
        f, g, h = engine.var(0), engine.var(1), engine.var(2)
        ite = engine.ite(f, g, h)
        assert evaluate(engine, ite, {0: True, 1: True, 2: False})
        assert not evaluate(engine, ite, {0: True, 1: False, 2: True})
        assert evaluate(engine, ite, {0: False, 1: False, 2: True})

    def test_implies(self, engine):
        narrow = engine.cube({0: True, 1: True})
        wide = engine.var(0)
        assert engine.implies(narrow, wide)
        assert not engine.implies(wide, narrow)

    def test_node_limit_overflow(self):
        tiny = BddEngine(N_VARS, node_limit=8)
        with pytest.raises(BddOverflowError):
            u = TRUE
            for i in range(N_VARS):
                u = tiny.and_(u, tiny.var(i))

    def test_clear_caches_preserves_semantics(self, engine):
        a = engine.and_(engine.var(0), engine.var(1))
        engine.clear_caches()
        b = engine.and_(engine.var(0), engine.var(1))
        assert a == b


class TestQuantification:
    def test_exists_removes_var(self, engine):
        u = engine.cube({0: True, 1: False})
        out = engine.exists(u, 0)
        assert out == engine.nvar(1)
        assert 0 not in engine.support(out)

    def test_exists_unrelated_var(self, engine):
        u = engine.var(2)
        assert engine.exists(u, 5) == u

    def test_set_var(self, engine):
        u = engine.cube({0: True, 4: False})
        out = engine.set_var(u, 4, True)
        assert out == engine.cube({0: True, 4: True})

    def test_set_var_idempotent(self, engine):
        u = engine.var(1)
        once = engine.set_var(u, 4, True)
        assert engine.set_var(once, 4, True) == once

    def test_support(self, engine):
        u = engine.and_(engine.var(2), engine.or_(engine.var(7), engine.nvar(4)))
        assert engine.support(u) == [2, 4, 7]
        assert engine.support(TRUE) == []


class TestCounting:
    def test_sat_count_terminals(self, engine):
        assert engine.sat_count(FALSE) == 0
        assert engine.sat_count(TRUE) == 1 << N_VARS

    def test_sat_count_single_var(self, engine):
        assert engine.sat_count(engine.var(0)) == 1 << (N_VARS - 1)
        assert engine.sat_count(engine.var(N_VARS - 1)) == 1 << (N_VARS - 1)

    def test_sat_count_cube(self, engine):
        u = engine.cube({1: True, 2: False, 9: True})
        assert engine.sat_count(u) == 1 << (N_VARS - 3)

    def test_sat_count_over_subset(self, engine):
        u = engine.cube({0: True, 1: True})
        assert engine.sat_count(u, over_vars=4) == 4

    def test_sat_count_subset_rejects_dependence(self, engine):
        u = engine.var(8)
        with pytest.raises(ValueError):
            engine.sat_count(u, over_vars=4)

    def test_any_sat(self, engine):
        u = engine.cube({0: True, 5: False})
        assignment = engine.any_sat(u)
        assert assignment[0] is True and assignment[5] is False
        assert engine.any_sat(FALSE) is None
        assert engine.any_sat(TRUE) == {}

    @given(formula)
    @settings(max_examples=60, deadline=None)
    def test_any_sat_satisfies(self, tree):
        engine = BddEngine(N_VARS)
        u = build(engine, tree)
        witness = engine.any_sat(u)
        if witness is None:
            assert u == FALSE
        else:
            full = {i: witness.get(i, False) for i in range(N_VARS)}
            assert evaluate(engine, u, full)


class TestAlgebraicLaws:
    @given(formula, formula)
    @settings(max_examples=80, deadline=None)
    def test_de_morgan(self, ta, tb):
        engine = BddEngine(N_VARS)
        a, b = build(engine, ta), build(engine, tb)
        assert engine.not_(engine.and_(a, b)) == engine.or_(
            engine.not_(a), engine.not_(b)
        )

    @given(formula, formula)
    @settings(max_examples=60, deadline=None)
    def test_xor_definition(self, ta, tb):
        engine = BddEngine(N_VARS)
        a, b = build(engine, ta), build(engine, tb)
        assert engine.xor(a, b) == engine.or_(
            engine.diff(a, b), engine.diff(b, a)
        )

    @given(formula)
    @settings(max_examples=60, deadline=None)
    def test_double_negation(self, tree):
        engine = BddEngine(N_VARS)
        u = build(engine, tree)
        assert engine.not_(engine.not_(u)) == u

    @given(formula, formula, formula)
    @settings(max_examples=40, deadline=None)
    def test_distribution(self, ta, tb, tc):
        engine = BddEngine(N_VARS)
        a, b, c = (build(engine, t) for t in (ta, tb, tc))
        assert engine.and_(a, engine.or_(b, c)) == engine.or_(
            engine.and_(a, b), engine.and_(a, c)
        )

    @given(formula, st.dictionaries(st.integers(0, N_VARS - 1), st.booleans()))
    @settings(max_examples=60, deadline=None)
    def test_semantics_against_evaluation(self, tree, partial):
        engine = BddEngine(N_VARS)
        u = build(engine, tree)
        full = {i: partial.get(i, False) for i in range(N_VARS)}
        expected = _eval_tree(tree, full)
        assert evaluate(engine, u, full) == expected


def _eval_tree(tree, assignment) -> bool:
    op = tree[0]
    if op == "const":
        return bool(tree[1])
    if op == "var":
        return assignment[tree[1]]
    if op == "nvar":
        return not assignment[tree[1]]
    if op == "not":
        return not _eval_tree(tree[1], assignment)
    a = _eval_tree(tree[1], assignment)
    b = _eval_tree(tree[2], assignment)
    return {"and": a and b, "or": a or b, "xor": a != b}[op]


class TestSerialization:
    def test_terminal_roundtrip(self, engine):
        other = BddEngine(N_VARS)
        assert deserialize(other, serialize(engine, TRUE)) == TRUE
        assert deserialize(other, serialize(engine, FALSE)) == FALSE

    def test_var_count_mismatch_rejected(self, engine):
        other = BddEngine(N_VARS + 1)
        with pytest.raises(ValueError):
            deserialize(other, serialize(engine, engine.var(0)))

    def test_packed_size_grows_with_nodes(self, engine):
        small = serialize(engine, engine.var(0))
        big = serialize(
            engine, engine.cube({i: True for i in range(N_VARS)})
        )
        assert packed_size(big) > packed_size(small)

    def test_bytes_roundtrip(self, engine):
        u = engine.xor(engine.var(0), engine.var(5))
        payload = serialize(engine, u)
        assert from_bytes(to_bytes(payload)) == payload
        assert len(to_bytes(payload)) == packed_size(payload)

    @given(formula)
    @settings(max_examples=80, deadline=None)
    def test_cross_engine_transfer_preserves_function(self, tree):
        source = BddEngine(N_VARS)
        u = build(source, tree)
        destination = BddEngine(N_VARS)
        # warm the destination with unrelated nodes so ids differ
        destination.cube({0: True, 7: False})
        v, _bytes = transfer(source, u, destination)
        back, _ = transfer(destination, v, source)
        assert back == u

    @given(formula, formula)
    @settings(max_examples=40, deadline=None)
    def test_transfer_commutes_with_ops(self, ta, tb):
        source = BddEngine(N_VARS)
        a, b = build(source, ta), build(source, tb)
        destination = BddEngine(N_VARS)
        a2, _ = transfer(source, a, destination)
        b2, _ = transfer(source, b, destination)
        joined_there = destination.and_(a2, b2)
        joined_here, _ = transfer(source, source.and_(a, b), destination)
        assert joined_there == joined_here

    @given(formula)
    @settings(max_examples=60, deadline=None)
    def test_bytes_roundtrip_property(self, tree):
        """to_bytes/from_bytes invert each other, terminals included."""
        engine = BddEngine(N_VARS)
        payload = serialize(engine, build(engine, tree))
        assert from_bytes(to_bytes(payload)) == payload


class TestFromBytesValidation:
    def test_short_header_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            from_bytes(b"\x01\x02\x03")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            from_bytes(b"")

    def test_torn_body_rejected(self, engine):
        payload = serialize(engine, engine.var(3))
        data = to_bytes(payload)
        with pytest.raises(ValueError, match="torn"):
            from_bytes(data[:-5])
        with pytest.raises(ValueError, match="torn"):
            from_bytes(data + b"\x00\x00\x00")

    def test_forward_child_reference_rejected(self, engine):
        u = engine.and_(engine.var(0), engine.var(1))
        num_vars, root, triples = serialize(engine, u)
        # point the first triple's low child at a *later* slot
        var, _low, high = triples[0]
        broken = (num_vars, root, ((var, 3, high),) + triples[1:])
        with pytest.raises(ValueError, match="child slot"):
            from_bytes(to_bytes(broken))

    def test_root_out_of_range_rejected(self, engine):
        num_vars, _root, triples = serialize(engine, engine.var(0))
        broken = (num_vars, 2 + len(triples), triples)
        with pytest.raises(ValueError, match="root slot"):
            from_bytes(to_bytes(broken))

    def test_struct_error_never_escapes(self, engine):
        data = to_bytes(serialize(engine, engine.xor(engine.var(0), engine.var(1))))
        for cut in range(len(data)):
            try:
                from_bytes(data[:cut])
            except ValueError:
                pass  # the only acceptable failure mode


class TestSendDedupCache:
    def test_first_offer_charges_full_size(self, engine):
        cache = SendDedupCache()
        payload = serialize(engine, engine.and_(engine.var(0), engine.var(1)))
        duplicate, wire = cache.offer(payload)
        assert not duplicate
        assert wire == packed_size(payload)
        assert cache.misses == 1 and cache.hits == 0

    def test_repeat_offer_charges_reference(self, engine):
        cache = SendDedupCache()
        payload = serialize(engine, engine.cube({i: True for i in range(8)}))
        cache.offer(payload)
        duplicate, wire = cache.offer(payload)
        assert duplicate
        assert wire == DEDUP_REF_BYTES
        assert cache.bytes_saved == packed_size(payload) - DEDUP_REF_BYTES

    def test_terminal_payload_never_charged_more_than_resend(self, engine):
        """A terminal packs to 8 bytes < DEDUP_REF_BYTES; dedup must not
        make it more expensive."""
        cache = SendDedupCache()
        payload = serialize(engine, TRUE)
        _, first = cache.offer(payload)
        duplicate, wire = cache.offer(payload)
        assert duplicate
        assert wire <= first
        assert cache.bytes_saved == 0

    def test_same_function_from_different_engines_dedups(self):
        """The wire format is canonical, so dedup is engine-independent."""
        a, b = BddEngine(N_VARS), BddEngine(N_VARS)
        b.cube({3: False, 9: True})  # skew b's node ids
        tree = ("or", ("var", 2), ("and", ("var", 5), ("nvar", 7)))
        pa, pb = serialize(a, build(a, tree)), serialize(b, build(b, tree))
        assert content_digest(pa) == content_digest(pb)
        cache = SendDedupCache()
        cache.offer(pa)
        duplicate, _ = cache.offer(pb)
        assert duplicate

    def test_distinct_payloads_do_not_collide(self, engine):
        cache = SendDedupCache()
        first = serialize(engine, engine.var(0))
        second = serialize(engine, engine.var(1))
        assert not cache.offer(first)[0]
        assert not cache.offer(second)[0]

    def test_bounded_eviction(self, engine):
        cache = SendDedupCache(max_entries=4)
        payloads = [serialize(engine, engine.var(i)) for i in range(10)]
        for payload in payloads:
            cache.offer(payload)
        assert len(cache) <= 2 * 4


class TestOpCacheBounds:
    def test_hit_only_workload_keeps_cache_bounded(self):
        """Regression: promoting old-generation hits must rotate when
        the live generation fills, exactly like misses do.  Before the
        fix, a hit-dominated phase grew ``_cache`` without bound —
        every promotion inserted, and only misses checked the limit."""
        limit = 16
        engine = BddEngine(N_VARS, cache_limit=limit)
        pairs = [
            (engine.var(i), engine.nvar(j))
            for i in range(N_VARS)
            for j in range(N_VARS)
            if i != j
        ]
        # Warm phase: populate both generations with distinct entries.
        for a, b in pairs:
            engine.or_(a, b)
            assert len(engine._cache) <= limit
        generations_before = engine.cache_generation
        # Hit-only phase: every op is answered from cache (no new nodes,
        # no misses) yet the live generation must stay bounded.
        nodes_before = engine.node_count
        for _ in range(3):
            for a, b in pairs:
                engine.or_(a, b)
                assert len(engine._cache) <= limit
        assert engine.node_count == nodes_before
        assert engine.cache_generation > generations_before

    def test_promotion_still_hits_after_rotation(self):
        engine = BddEngine(N_VARS, cache_limit=4)
        a, b = engine.var(0), engine.var(1)
        u = engine.or_(a, b)
        hits_before = engine.cache_hits
        # Force rotations so the (OR, a, b) entry ages into _cache_old,
        # then query it again: the promotion path must return it.
        for i in range(2, 8):
            engine.or_(engine.var(i), engine.nvar(i - 1))
        assert engine.or_(a, b) == u
        assert engine.cache_hits > hits_before


class TestCubeValidation:
    def test_cube_rejects_out_of_range_index(self, engine):
        """Regression: ``cube`` must validate like ``var``/``nvar`` —
        an out-of-range index previously built a node at a phantom
        level, corrupting variable ordering silently."""
        with pytest.raises(ValueError, match="out of range"):
            engine.cube({N_VARS: True})
        with pytest.raises(ValueError, match="out of range"):
            engine.cube({-1: False})
        # In-range assignments are unaffected.
        assert engine.cube({0: True}) == engine.var(0)
