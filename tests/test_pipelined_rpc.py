"""The pipelined call path: futures on the wire, batched deliveries.

``call_nowait`` must put the request on the wire immediately and hand
back a future whose ``result()`` owns the whole retry/timeout machinery
``call`` had; the sidecar outbox must coalesce a round's batches into
one ``deliver_routes_many`` per target with accounting identical to the
one-at-a-time path.  These are the semantics the CPO's overlapped
exchange phase rests on.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.dist.faults import FaultPlan, FaultSpec
from repro.dist.message import RouteBatch, measured_size
from repro.dist.partition import partition
from repro.dist.sidecar import Sidecar
from repro.dist.transport import (
    ConnectionLostError,
    RpcFuture,
    RpcTimeoutError,
)
from repro.dist.worker import Worker
from repro.net.ip import Prefix
from repro.routing.route import BgpRoute

from tests.test_transport import _fast_policy, harness  # noqa: F401


# -- channel futures --------------------------------------------------------


def test_call_nowait_matches_call(harness):  # noqa: F811
    h = harness()
    future = h.channel.call_nowait("compute", (1, "two"))
    assert isinstance(future, RpcFuture)
    assert future.result() == ("ok", ("echo", "compute", (1, "two")))
    assert future.result() == h.channel.call("compute", (1, "two"))


def test_result_is_idempotent_including_app_errors(harness):  # noqa: F811
    h = harness()
    future = h.channel.call_nowait("boom")
    first = future.result()
    assert first[0] == "exc" and first[1][0] == "ValueError"
    assert future.result() is first


def test_requests_overlap_on_the_wire(harness):  # noqa: F811
    """Both frames leave before either answer arrives — the overlap
    call-and-wait can never produce."""
    h = harness(policy=_fast_policy(rpc_window=4))
    h.service.stall = threading.Event()
    futures = [h.channel.call_nowait("slow", (i,)) for i in range(2)]
    deadline = time.monotonic() + 5.0
    while h.channel.counters["frames_sent"] < 2:
        assert time.monotonic() < deadline, "second frame never sent"
        time.sleep(0.01)
    assert not any(f.done() for f in futures)
    h.service.stall.set()
    for i, future in enumerate(futures):
        assert future.result() == ("ok", ("echo", "slow", (i,)))
    assert h.channel.counters["inflight_high_water"] == 2


def test_window_backpressure_applies_at_issue(harness):  # noqa: F811
    h = harness(policy=_fast_policy(rpc_window=1))
    h.service.stall = threading.Event()
    occupier = h.channel.call_nowait("slow")
    with pytest.raises(RpcTimeoutError, match="no in-flight slot"):
        h.channel.call_nowait("starved", timeout=0.2)
    h.service.stall.set()
    assert occupier.result()[0] == "ok"
    # The slot freed by result(): the next issue succeeds immediately.
    assert h.channel.call_nowait("after").result()[0] == "ok"


def test_future_retries_through_faults(harness):  # noqa: F811
    plan = FaultPlan(
        [FaultSpec(kind="torn_frame", worker=0, command="pull_round")]
    )
    h = harness(fault_plan=plan)
    future = h.channel.call_nowait("pull_round", (7,))
    assert future.result() == ("ok", ("echo", "pull_round", (7,)))
    assert h.channel.counters["retries"] >= 1
    # The torn copy never parsed: executed exactly once despite retry.
    assert h.service.calls.count("pull_round") == 1


def test_future_failure_releases_the_window():
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()  # nothing listens here now
    from repro.dist.transport import RpcChannel

    channel = RpcChannel(
        ("127.0.0.1", port),
        policy=_fast_policy(
            call_timeout=1.0, max_call_retries=1, rpc_window=1
        ),
    )
    try:
        future = channel.call_nowait("ping")
        with pytest.raises(ConnectionLostError):
            future.result()
        # Window slot released on failure: a second issue is not starved.
        with pytest.raises(ConnectionLostError):
            channel.call_nowait("ping").result()
    finally:
        channel.close()


# -- batched deliveries -----------------------------------------------------


@pytest.fixture()
def worker_pair(fattree4):
    result = partition(fattree4, 2, scheme="metis")
    workers = [Worker(i, fattree4, result.assignment) for i in range(2)]
    sidecars = [Sidecar(w) for w in workers]
    for sidecar in sidecars:
        sidecar.register_peers(sidecars)
    return workers, sidecars


def _batch(source=0, target=1, round_token=0, exports=None):
    return RouteBatch(
        source_worker=source,
        target_worker=target,
        round_token=round_token,
        exports=exports or {},
    )


def test_deliver_routes_many_equals_loop(fattree4):
    result = partition(fattree4, 2, scheme="metis")
    a = Worker(1, fattree4, result.assignment)
    b = Worker(1, fattree4, result.assignment)
    route = BgpRoute(
        prefix=Prefix.parse("10.9.0.0/24"), next_hop=1, from_node="x"
    )
    exporter = next(iter(a.nodes))
    batches = [
        _batch(round_token=r, exports={(exporter, "x"): (route,)})
        for r in range(3)
    ]
    for batch in batches:
        a.deliver_routes(batch)
    b.deliver_routes_many(batches)
    assert a.mailbox == b.mailbox
    assert a.fault_counters() == b.fault_counters()


def test_queue_flush_matches_send(worker_pair):
    workers, sidecars = worker_pair
    route = BgpRoute(
        prefix=Prefix.parse("10.9.0.0/24"), next_hop=1, from_node="x"
    )
    batch = _batch(exports={("x", "y"): (route,)})
    size = sidecars[0].queue_routes(batch)
    assert size == measured_size(
        sidecars[0]._outbox[1][0]
    )  # charged the stamped batch
    assert workers[0].resources.rpc_bytes_sent == size
    # Nothing delivered until the flush barrier.
    assert ("x", "y") not in workers[1].mailbox
    handles = sidecars[0].flush_routes()
    assert handles == []  # in-process peers deliver synchronously
    assert workers[1].mailbox[("x", "y")] == (route,)
    # A second flush is a no-op: the outbox was consumed.
    assert sidecars[0].flush_routes() == []


def test_queue_flush_coalesces_per_target(worker_pair):
    workers, sidecars = worker_pair
    for round_token in range(3):
        sidecars[0].queue_routes(_batch(round_token=round_token))
    sidecars[0].flush_routes()
    # Sequence numbers were stamped at queue time, in order; every
    # batch landed (no dedup hits) via the one coalesced delivery.
    assert workers[1]._batch_sequences[0] == 3
    assert workers[1].fault_counters()["duplicate_batches"] == 0


def test_queue_respects_fault_injection(fattree4):
    result = partition(fattree4, 2, scheme="metis")
    workers = [Worker(i, fattree4, result.assignment) for i in range(2)]
    plan = FaultPlan(
        [
            FaultSpec(kind="drop", worker=0, times=1),
            FaultSpec(kind="duplicate", worker=0, times=1),
        ]
    )
    sidecars = [Sidecar(w, fault_plan=plan) for w in workers]
    for sidecar in sidecars:
        sidecar.register_peers(sidecars)
    dropped = sidecars[0].queue_routes(_batch())      # eaten by the plan
    duplicated = sidecars[0].queue_routes(_batch())   # delivered twice
    assert dropped > 0 and duplicated > 0
    assert sidecars[0].batches_dropped == 1
    assert sidecars[0].batches_duplicated == 1
    # The duplicate is charged to the sender like the send path does.
    assert workers[0].resources.rpc_bytes_sent == dropped + 2 * duplicated
    sidecars[0].flush_routes()
    # The dropped batch (sequence 1) never arrived; the duplicated one
    # (sequence 2) arrived twice and the receiver deduped the replay.
    assert workers[1]._batch_sequences[0] == 2
    assert workers[1].fault_counters()["duplicate_batches"] == 1


def test_convergence_through_queue_flush(worker_pair, fattree4_sim):
    """The pipelined exchange reaches the same fixed point as the
    monolithic engine — queue+flush is a drop-in for send_routes."""
    workers, sidecars = worker_pair
    _, expected = fattree4_sim
    for w in workers:
        w.begin_shard(None)
    for round_token in range(50):
        for worker, sidecar in zip(workers, sidecars):
            for batch in worker.compute_exports(round_token).values():
                sidecar.queue_routes(batch)
        for sidecar in sidecars:
            for handle in sidecar.flush_routes():
                handle.result()
        if not any(w.pull_round(round_token).changed for w in workers):
            break
    merged = {}
    for worker in workers:
        merged.update(worker.finish_shard())
    for host, table in expected.items():
        assert merged.get(host, {}) == table
