"""Tests for the distributed framework internals: resources, storage,
workers, shadows, sidecars."""

import os
import pickle

import pytest

from repro.dist.message import RouteBatch, measured_size
from repro.dist.partition import partition
from repro.dist.resources import (
    ClusterReport,
    CostModel,
    SimulatedOOM,
    WorkerResources,
)
from repro.dist.sidecar import Sidecar
from repro.dist.storage import RouteStore
from repro.dist.worker import ShadowNode, Worker
from repro.net.ip import Prefix
from repro.routing.route import BgpRoute


class TestCostModel:
    def test_memory_bytes_components(self):
        model = CostModel()
        base = model.memory_bytes(0, 0, 0)
        assert base == model.worker_base_bytes
        with_routes = model.memory_bytes(10, 0, 0)
        assert with_routes == base + 10 * model.route_bytes
        with_all = model.memory_bytes(10, 100, 5, fib_entries=7)
        assert with_all == (
            base
            + 10 * model.route_bytes
            + 100 * model.bdd_node_bytes
            + 5 * model.node_base_bytes
            + 7 * model.fib_entry_bytes
        )

    def test_gc_factor_below_threshold(self):
        model = CostModel()
        assert model.gc_factor(0, 100) == 1.0
        assert model.gc_factor(49, 100) == 1.0

    def test_gc_factor_monotone(self):
        model = CostModel()
        values = [model.gc_factor(u, 100) for u in (55, 70, 85, 100)]
        assert values == sorted(values)
        assert values[-1] == model.gc_max_penalty

    def test_gc_factor_capped(self):
        model = CostModel()
        assert model.gc_factor(500, 100) == model.gc_max_penalty


class TestWorkerResources:
    def test_update_memory_tracks_peak(self):
        resources = WorkerResources(name="w", capacity=1 << 30)
        resources.update_memory(100, 0)
        first = resources.current_bytes
        resources.update_memory(10, 0)
        assert resources.current_bytes < first
        assert resources.peak_bytes == first

    def test_oom_raised_and_flagged(self):
        resources = WorkerResources(name="w", capacity=1)
        with pytest.raises(SimulatedOOM) as exc:
            resources.update_memory(1000, 0)
        assert resources.oom
        assert exc.value.worker == "w"

    def test_oom_not_raised_unenforced(self):
        resources = WorkerResources(name="w", capacity=1)
        resources.update_memory(1000, 0, enforce=False)
        assert not resources.oom

    def test_charge_route_round_divides_by_cores(self):
        model = CostModel(cores_per_worker=10, route_update_cost=1.0)
        resources = WorkerResources(name="w", capacity=1 << 30, model=model)
        elapsed = resources.charge_route_round(100)
        assert elapsed == pytest.approx(10.0)

    def test_charge_bdd_ops_not_divided(self):
        resources = WorkerResources(name="w", capacity=1 << 30)
        elapsed = resources.charge_bdd_ops(100)
        assert elapsed == pytest.approx(100.0)

    def test_charge_rpc(self):
        model = CostModel(rpc_byte_cost=0.001, rpc_message_cost=2.0)
        resources = WorkerResources(name="w", capacity=1 << 30, model=model)
        elapsed = resources.charge_rpc(1000, messages=3)
        assert elapsed == pytest.approx(1.0 + 6.0)
        assert resources.rpc_bytes_sent == 1000
        assert resources.rpc_messages_sent == 3

    def test_gc_inflates_route_round(self):
        model = CostModel(cores_per_worker=1)
        resources = WorkerResources(name="w", capacity=1 << 30, model=model)
        resources.update_memory(10, 0)
        cold = resources.charge_route_round(100)
        resources.capacity = resources.current_bytes  # 100% utilization
        hot = resources.charge_route_round(100)
        assert hot > cold * 2

    def test_cluster_report(self):
        a = WorkerResources(name="a")
        b = WorkerResources(name="b")
        a.modeled_time, b.modeled_time = 10.0, 30.0
        a.peak_bytes, b.peak_bytes = 100, 50
        report = ClusterReport(workers=[a, b])
        assert report.makespan == 30.0
        assert report.peak_worker_bytes == 100
        assert not report.any_oom
        assert report.by_name()["b"].modeled_time == 30.0


class TestRouteStore:
    def test_write_read_roundtrip(self, tmp_path):
        store = RouteStore(str(tmp_path / "spool"))
        prefix = Prefix.parse("10.0.0.0/24")
        routes = {
            "node1": {prefix: (BgpRoute(prefix=prefix, next_hop=1, from_node="x"),)}
        }
        written = store.write_shard(0, 0, routes)
        assert written > 0
        assert store.read_shard(0, 0) == routes

    def test_merged_routes_across_shards(self, tmp_path):
        store = RouteStore(str(tmp_path / "spool"))
        p1, p2 = Prefix.parse("10.0.0.0/24"), Prefix.parse("10.1.0.0/24")
        store.write_shard(0, 0, {"n": {p1: ()}})
        store.write_shard(0, 1, {"n": {p2: ()}})
        store.write_shard(1, 0, {"m": {p1: ()}})
        merged = store.merged_routes(0)
        assert set(merged["n"]) == {p1, p2}
        assert "m" not in merged

    def test_owned_store_cleans_up(self):
        store = RouteStore()
        directory = store.directory
        store.write_shard(0, 0, {})
        store.close()
        assert not os.path.isdir(directory)

    def test_external_dir_not_deleted(self, tmp_path):
        spool = str(tmp_path / "spool")
        with RouteStore(spool) as store:
            store.write_shard(0, 0, {})
        assert os.path.isdir(spool)

    def test_bytes_written_accumulates(self, tmp_path):
        store = RouteStore(str(tmp_path / "s"))
        a = store.write_shard(0, 0, {})
        b = store.write_shard(0, 1, {})
        assert store.bytes_written == a + b


@pytest.fixture()
def worker_pair(fattree4):
    """Two workers splitting FatTree4 by the metis scheme, wired by
    sidecars — the minimal distributed setup."""
    result = partition(fattree4, 2, scheme="metis")
    workers = [
        Worker(i, fattree4, result.assignment) for i in range(2)
    ]
    sidecars = [Sidecar(w) for w in workers]
    for sidecar in sidecars:
        sidecar.register_peers(sidecars)
    return workers, sidecars


class TestWorker:
    def test_real_nodes_match_assignment(self, worker_pair, fattree4):
        workers, _ = worker_pair
        owned = sorted(
            name for w in workers for name in w.nodes
        )
        assert owned == sorted(fattree4.topology.node_names())
        assert not (set(workers[0].nodes) & set(workers[1].nodes))

    def test_shadow_created_on_demand(self, worker_pair):
        workers, _ = worker_pair
        remote_name = next(iter(workers[1].nodes))
        shadow = workers[0]._resolve(remote_name)
        assert isinstance(shadow, ShadowNode)
        assert shadow.name == remote_name
        # resolution is cached
        assert workers[0]._resolve(remote_name) is shadow

    def test_real_node_resolved_directly(self, worker_pair):
        workers, _ = worker_pair
        local_name = next(iter(workers[0].nodes))
        assert workers[0]._resolve(local_name) is workers[0].nodes[local_name]

    def test_shadow_answers_from_mailbox(self, worker_pair):
        workers, _ = worker_pair
        shadow = ShadowNode("ghost", workers[0])
        assert shadow.advertise(42) == []
        route = BgpRoute(
            prefix=Prefix.parse("10.0.0.0/24"), next_hop=1, from_node="ghost"
        )
        workers[0].mailbox[("ghost", 42)] = [route]
        assert shadow.advertise(42) == [route]

    def test_boundary_exports_target_remote_sessions_only(self, worker_pair):
        workers, _ = worker_pair
        for w in workers:
            w.begin_shard(None)
        batches = workers[0].compute_exports(0)
        assert set(batches) <= {1}
        for batch in batches.values():
            for (exporter, _peer), _routes in batch.exports.items():
                assert exporter in workers[0].nodes

    def test_round_trip_convergence_matches_monolithic(
        self, worker_pair, fattree4_sim
    ):
        workers, sidecars = worker_pair
        _, expected = fattree4_sim
        for w in workers:
            w.begin_shard(None)
        for round_token in range(50):
            for worker, sidecar in zip(workers, sidecars):
                for batch in worker.compute_exports(round_token).values():
                    sidecar.send_routes(batch)
            changed = False
            for worker in workers:
                changed |= worker.pull_round(round_token).changed
            if not changed:
                break
        merged = {}
        for worker in workers:
            merged.update(worker.finish_shard())
        for host, table in expected.items():
            assert merged.get(host, {}) == table

    def test_finish_shard_frees_memory(self, worker_pair):
        workers, sidecars = worker_pair
        for w in workers:
            w.begin_shard(None)
        for round_token in range(50):
            for worker, sidecar in zip(workers, sidecars):
                for batch in worker.compute_exports(round_token).values():
                    sidecar.send_routes(batch)
            if not any(w.pull_round(round_token).changed for w in workers):
                break
        before = workers[0].update_memory(enforce=False)
        workers[0].finish_shard()
        after = workers[0].update_memory(enforce=False)
        assert after < before

    def test_sidecar_charges_sender(self, worker_pair):
        workers, sidecars = worker_pair
        batch = RouteBatch(
            source_worker=0, target_worker=1, round_token=0, exports={}
        )
        size = sidecars[0].send_routes(batch)
        assert size == measured_size(batch)
        assert workers[0].resources.rpc_bytes_sent == size
        assert workers[1].resources.rpc_bytes_sent == 0

    def test_shard_filter_restricts_exports(self, worker_pair, fattree4):
        workers, sidecars = worker_pair
        from repro.dist.sharding import make_shards

        shard = make_shards(fattree4, 4)[0]
        for w in workers:
            w.begin_shard(shard)
        for round_token in range(50):
            for worker, sidecar in zip(workers, sidecars):
                for batch in worker.compute_exports(round_token).values():
                    sidecar.send_routes(batch)
            if not any(w.pull_round(round_token).changed for w in workers):
                break
        merged = {}
        for worker in workers:
            merged.update(worker.finish_shard())
        for table in merged.values():
            assert set(table) <= set(shard.prefixes)


class TestMessages:
    def test_measured_size_is_pickle_length(self):
        batch = RouteBatch(
            source_worker=0, target_worker=1, round_token=3, exports={}
        )
        assert measured_size(batch) == len(
            pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_route_batch_count(self):
        prefix = Prefix.parse("10.0.0.0/24")
        route = BgpRoute(prefix=prefix, next_hop=1, from_node="a")
        batch = RouteBatch(
            source_worker=0,
            target_worker=1,
            round_token=0,
            exports={("a", 5): [route, route]},
        )
        assert batch.route_count() == 2
