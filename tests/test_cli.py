"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestVerify:
    def test_verify_fattree(self, capsys):
        code = main(["verify", "fattree", "--k", "4", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out and "64/64" in out

    def test_verify_verbose_worker_table(self, capsys):
        code = main(
            ["verify", "fattree", "--k", "4", "--workers", "2", "-v"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "worker0" in out and "worker1" in out

    def test_verify_single_pair(self, capsys):
        code = main(
            [
                "verify", "fattree", "--k", "4",
                "--src", "edge-0-0", "--dst", "edge-1-0",
                "--prefix", "10.1.0.0/24",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1/1" in out

    def test_verify_oom_exit_code(self, capsys, monkeypatch):
        from repro.dist import controller

        original = controller.S2Options
        # shrink capacity through the default options path
        monkeypatch.setattr(
            "repro.cli.S2Options",
            lambda **kw: original(**{**kw, "worker_capacity": 1}),
        )
        code = main(["verify", "fattree", "--k", "4"])
        out = capsys.readouterr().out
        assert code == 1
        assert "OOM" in out

    def test_verify_check_loops(self, capsys):
        code = main(
            ["verify", "fattree", "--k", "4", "--check-loops"]
        )
        assert code == 0

    def test_verify_snapshot_dir(self, tmp_path, capsys):
        from repro.config.loader import write_snapshot_dir
        from repro.net.fattree import FatTreeSpec, render_configs

        write_snapshot_dir(str(tmp_path), render_configs(FatTreeSpec(k=4)))
        code = main(["verify", str(tmp_path), "--workers", "2"])
        assert code == 0


class TestPartitionAndShards:
    def test_partition_table(self, capsys):
        code = main(
            ["partition", "fattree", "--k", "4", "--workers", "4",
             "--scheme", "expert"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "edge cut" in out and "imbalance" in out

    def test_shards_table(self, capsys):
        code = main(["shards", "dcn", "--shards", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dependencies" in out
        assert "shard" in out

    def test_shards_reports_components(self, capsys):
        code = main(["shards", "fattree", "--k", "4", "--shards", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "8 prefixes, 0 dependencies, 8 independent components" in out


class TestSynthesize:
    def test_synthesize_fattree(self, tmp_path, capsys):
        out_dir = str(tmp_path / "snap")
        code = main(["synthesize", "fattree", out_dir, "--k", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "20 device configs" in out
        # and it round-trips through verify
        assert main(["verify", out_dir, "--workers", "2"]) == 0

    def test_synthesize_dcn(self, tmp_path, capsys):
        out_dir = str(tmp_path / "snap")
        code = main(["synthesize", "dcn", out_dir])
        assert code == 0
        assert "device configs" in capsys.readouterr().out


class TestTrace:
    def test_trace_paths(self, capsys):
        code = main(
            [
                "trace", "fattree", "--k", "4",
                "--src", "edge-0-0", "--dst", "edge-1-0",
                "--prefix", "10.1.0.0/24",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "arrive" in out
        assert "edge-0-0 -> " in out

    def test_trace_no_match(self, capsys):
        code = main(
            [
                "trace", "fattree", "--k", "4",
                "--src", "edge-0-0", "--dst", "edge-1-0",
                "--prefix", "55.0.0.0/8",
            ]
        )
        assert code == 1
        assert "no matching" in capsys.readouterr().out
