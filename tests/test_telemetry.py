"""The live telemetry plane: frames, journal, OpenMetrics, repro top.

Unit coverage for the new ``repro.obs`` pieces (bounded journal,
reservoir histograms, frame validation, churn-aware collection,
exposition-format rendering) plus end-to-end checks: a serving session
stays observable across a forced worker respawn, torn telemetry frames
under chaos faults never poison results, and ``repro top`` renders a
live session without a TTY.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.request

import pytest

from repro.dist.controller import S2Options
from repro.obs.journal import (
    EventJournal,
    JournalEvent,
    journal_gaps,
    read_journal,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    MetricsHTTPServer,
    render_openmetrics,
    sanitize_metric_name,
    validate_openmetrics,
)
from repro.obs.telemetry import (
    FRAME_VERSION,
    TelemetryCollector,
    TelemetrySource,
    validate_frame,
)
from repro.obs.top import render_top, run_top


# -- journal ---------------------------------------------------------------


def test_journal_orders_and_replays():
    journal = EventJournal(capacity=64)
    journal.record("boot", warm=False)
    journal.record("epoch_commit", epoch=1)
    journal.record("epoch_commit", epoch=2)
    events = journal.events()
    assert [e.seq for e in events] == [1, 2, 3]
    assert [e.kind for e in events] == ["boot", "epoch_commit", "epoch_commit"]
    assert journal.events(since=2) == events[2:]
    # limit keeps the newest matching records
    assert [e.seq for e in journal.events(limit=2)] == [2, 3]
    assert journal_gaps(events) == []


def test_journal_rejects_unknown_kinds():
    journal = EventJournal()
    with pytest.raises(ValueError):
        journal.record("made_up_kind")


def test_journal_bounds_memory_and_counts_drops():
    journal = EventJournal(capacity=10)
    for epoch in range(25):
        journal.record("epoch_commit", epoch=epoch)
    events = journal.events()
    assert len(events) == 10
    assert journal.dropped == 15
    assert journal.first_seq == 16
    assert journal.last_seq == 25
    # seq is never reused: the retained window is contiguous
    assert [e.seq for e in events] == list(range(16, 26))
    describe = journal.describe()
    assert describe["retained"] == 10
    assert describe["dropped"] == 15


def test_journal_sink_round_trips_and_skips_torn_lines(tmp_path):
    sink = tmp_path / "journal.jsonl"
    journal = EventJournal(capacity=4, sink_path=str(sink))
    for epoch in range(8):
        journal.record("epoch_commit", epoch=epoch)
    journal.close()
    # the sink keeps everything, even what the ring dropped
    events = read_journal(str(sink))
    assert [e.seq for e in events] == list(range(1, 9))
    assert journal_gaps(events) == []
    # a torn tail (process died mid-write) is skipped, not fatal
    with open(sink, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 9, "ts": 1.0, "ki')
    assert [e.seq for e in read_journal(str(sink))] == list(range(1, 9))


def test_journal_gaps_reports_missing_seq():
    events = [
        JournalEvent(seq=s, ts=0.0, kind="epoch_commit") for s in (1, 2, 5, 6)
    ]
    assert journal_gaps(events) == [3, 4]


# -- reservoir histogram ---------------------------------------------------


def test_histogram_exact_below_cap():
    registry = MetricsRegistry()
    hist = registry.histogram("h")
    for value in range(100):
        hist.observe(float(value))
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["sum"] == pytest.approx(sum(range(100)))
    assert summary["min"] == 0 and summary["max"] == 99
    assert "sampled" not in summary


def test_histogram_memory_is_bounded_above_cap():
    registry = MetricsRegistry()
    hist = registry.histogram("h")
    n = hist._cap
    total = n + 5000
    for value in range(total):
        hist.observe(float(value))
    assert len(hist.values) == n          # bounded
    assert hist.count == total            # exact
    assert hist.total == pytest.approx(sum(range(total)))
    assert hist.summary()["sampled"] is True
    # the approximation stays sane: p50 of a uniform ramp is near mid
    p50 = hist.percentile(50)
    assert total * 0.3 < p50 < total * 0.7


# -- frames ----------------------------------------------------------------


class _FakeResources:
    candidate_routes = 7
    bdd_nodes = 42
    fib_entries = 5
    current_bytes = 1 << 20
    peak_bytes = 2 << 20
    retries = 0
    respawns = 1
    oom = False


class _FakeWorker:
    worker_id = 3
    epoch = 9
    last_round = 4
    resources = _FakeResources()
    pending_packets = 2
    duplicate_batches = 0
    engine = None
    tracer = None


def test_source_builds_valid_frames_with_monotonic_seq():
    source = TelemetrySource(_FakeWorker(), interval=1e-9)
    first = source.maybe_frame(phase="pull_round")
    second = source.frame(phase="drain")
    for frame in (first, second):
        assert validate_frame(frame) is None
    assert first["v"] == FRAME_VERSION
    assert (first["seq"], second["seq"]) == (1, 2)
    assert first["worker"] == 3 and first["epoch"] == 9
    assert first["stats"]["candidate_routes"] == 7
    assert first["stats"]["respawns"] == 1
    assert second["phase"] == "drain"
    # frames are wire-safe
    json.dumps(first)


def test_source_interval_gate_and_disable():
    clock = [0.0]
    source = TelemetrySource(
        _FakeWorker(), interval=1.0, clock=lambda: clock[0]
    )
    assert source.maybe_frame() is not None  # first call always emits
    assert source.maybe_frame() is None      # gated
    clock[0] += 1.5
    assert source.maybe_frame() is not None
    assert source.maybe_frame(force=True) is not None
    disabled = TelemetrySource(_FakeWorker(), interval=0.0)
    assert not disabled.enabled
    assert disabled.maybe_frame(force=True) is None


@pytest.mark.parametrize(
    "mutate",
    [
        lambda f: f.pop("seq"),
        lambda f: f.__setitem__("seq", 0),
        lambda f: f.__setitem__("seq", True),
        lambda f: f.__setitem__("v", FRAME_VERSION + 1),
        lambda f: f.__setitem__("stats", [1, 2]),
        lambda f: f["stats"].__setitem__("bdd_nodes", "torn#garbage"),
    ],
)
def test_validate_frame_rejects_damage(mutate):
    frame = TelemetrySource(_FakeWorker(), interval=1e-9).frame()
    assert validate_frame(frame) is None
    mutate(frame)
    assert validate_frame(frame) is not None


def test_validate_frame_rejects_non_dicts():
    assert validate_frame(None) is not None
    assert validate_frame(b"\x00\x01torn") is not None
    assert validate_frame(["not", "a", "frame"]) is not None


# -- collector -------------------------------------------------------------


def _frame(worker=0, incarnation=0, seq=1, **stats):
    return {
        "v": FRAME_VERSION,
        "worker": worker,
        "incarnation": incarnation,
        "seq": seq,
        "ts": time.time(),
        "epoch": 1,
        "round": 2,
        "phase": "pull_round",
        "spans": [],
        "stats": {"bdd_nodes": 10, **stats},
    }


def test_collector_folds_frames_into_worker_gauges():
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry)
    assert collector.ingest(_frame(worker=1, seq=1)) == "ok"
    snapshot = registry.snapshot()
    assert snapshot["gauges"]["worker1.bdd_nodes"]["value"] == 10
    assert snapshot["gauges"]["worker1.epoch"]["value"] == 1
    assert snapshot["counters"]["telemetry.frames"] == 1
    assert collector.worker_summary()["worker1"]["seq"] == 1


def test_collector_drops_stale_and_counts_gaps():
    registry = MetricsRegistry()
    journal = EventJournal()
    collector = TelemetryCollector(registry, journal=journal)
    assert collector.ingest(_frame(seq=1)) == "ok"
    assert collector.ingest(_frame(seq=1)) == "stale"   # duplicate
    assert collector.ingest(_frame(seq=4)) == "gap"     # 2, 3 lost
    assert collector.frames_lost == 2
    assert collector.ingest(_frame(seq=3)) == "stale"   # reordered past
    gap_events = [e for e in journal.events() if e.kind == "telemetry_gap"]
    assert len(gap_events) == 1
    assert gap_events[0].attrs["lost"] == 2
    assert collector.ingest(b"torn!") == "invalid"
    assert registry.snapshot()["counters"]["telemetry.frames_invalid"] == 1


def test_collector_accepts_respawn_mid_push():
    """A respawned worker restarts at seq 1 under a new incarnation —
    that must be accepted, not treated as a stale duplicate."""
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry)
    source = TelemetrySource(_FakeWorker(), interval=1e-9)
    assert collector.ingest(source.frame()) == "ok"
    assert collector.ingest(source.frame()) == "ok"
    source.reincarnate()  # the respawn, mid-push
    frame = source.frame()
    assert frame["seq"] == 1 and frame["incarnation"] == 1
    assert collector.ingest(frame) == "ok"
    # ...and a zombie from the old incarnation is now stale
    assert collector.ingest(_frame(worker=3, incarnation=0, seq=9)) == "stale"
    summary = collector.worker_summary()["worker3"]
    assert summary["incarnation"] == 1 and summary["seq"] == 1


# -- openmetrics -----------------------------------------------------------


def test_render_openmetrics_is_valid_and_labels_workers():
    registry = MetricsRegistry()
    registry.counter("telemetry.frames").inc(3)
    registry.set_gauges(
        {
            "serve.epoch": 5,
            "worker0.bdd_nodes": 11,
            "worker1.bdd_nodes": 22,
            "worker1.engine.cache_hit_rate": 0.75,
        }
    )
    hist = registry.histogram("serve.query_latency")
    for value in (0.001, 0.002, 0.003):
        hist.observe(value)
    text = render_openmetrics(registry.snapshot())
    assert validate_openmetrics(text) == [], text
    assert "# TYPE s2_telemetry_frames counter" in text
    assert "s2_telemetry_frames_total 3" in text
    assert 's2_worker_bdd_nodes{worker="0"} 11' in text
    assert 's2_worker_bdd_nodes{worker="1"} 22' in text
    assert 's2_worker_engine_cache_hit_rate{worker="1"} 0.75' in text
    assert "# TYPE s2_serve_query_latency summary" in text
    assert "s2_serve_query_latency_count 3" in text
    assert 's2_serve_query_latency{quantile="0.5"}' in text
    assert text.endswith("# EOF\n")
    # one TYPE line per family even with many labelled samples
    assert text.count("# TYPE s2_worker_bdd_nodes gauge") == 1


def test_validate_openmetrics_catches_malformations():
    assert validate_openmetrics("") != []
    assert validate_openmetrics("s2_x 1\n# EOF\n") != []  # no TYPE
    assert validate_openmetrics("# TYPE s2_x counter\ns2_x 1\n# EOF\n") != []
    assert (
        validate_openmetrics("# TYPE s2_x gauge\ns2_x notanumber\n# EOF\n")
        != []
    )
    assert validate_openmetrics("# TYPE s2_x gauge\ns2_x 1\n") != []  # no EOF
    assert (
        validate_openmetrics("# TYPE s2_x gauge\ns2_x 1\n# EOF\njunk\n") != []
    )
    ok = "# TYPE s2_x counter\ns2_x_total 1\n# EOF\n"
    assert validate_openmetrics(ok) == []


def test_sanitize_metric_name():
    assert sanitize_metric_name("serve.query_latency") == (
        "s2_serve_query_latency"
    )
    assert sanitize_metric_name("rpc.bytes-sent") == "s2_rpc_bytes_sent"


def test_metrics_http_server_scrapes():
    registry = MetricsRegistry()
    registry.counter("telemetry.frames").inc()
    journal = EventJournal()
    journal.record("boot", warm=False)
    journal.record("epoch_commit", epoch=1)
    server = MetricsHTTPServer(
        registry.snapshot,
        journal=journal,
        status_fn=lambda: {"status": "serving"},
    )
    base = f"http://{server.address}"
    try:
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as reply:
            text = reply.read().decode("utf-8")
        assert validate_openmetrics(text) == [], text
        with urllib.request.urlopen(
            f"{base}/eventsz?since=1", timeout=10
        ) as reply:
            payload = json.loads(reply.read())
        assert payload["journal"]["last_seq"] == 2
        assert [e["seq"] for e in payload["events"]] == [2]
        with urllib.request.urlopen(f"{base}/statusz", timeout=10) as reply:
            assert json.loads(reply.read())["status"] == "serving"
        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as reply:
            assert json.loads(reply.read())["ok"] is True
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{base}/nope", timeout=10)
    finally:
        server.close()


# -- torn/partitioned telemetry under chaos --------------------------------


def test_telemetry_survives_socket_chaos(fattree4):
    """Torn frames and a partition on the very RPCs that piggyback
    telemetry: the run must still converge, and whatever frames did get
    through must have been folded without poisoning the registry."""
    from repro import FaultPlan, FaultSpec, RetryPolicy, S2Verifier

    plan = FaultPlan(
        [
            FaultSpec(
                kind="torn_frame", worker=0, command="compute_exports"
            ),
            FaultSpec(
                kind="partition",
                worker=1,
                command="pull_round",
                where="response",
                heal_after=2,
            ),
        ]
    )
    options = S2Options(
        num_workers=3,
        num_shards=2,
        runtime="socket",
        fault_plan=plan,
        retry_policy=RetryPolicy(backoff_base=0.01),
        telemetry_interval=1e-9,  # every dispatch carries a frame
    )
    with S2Verifier(fattree4, options) as verifier:
        result = verifier.verify()
        collector = verifier.controller.telemetry
        snapshot = verifier.controller.metrics_snapshot()
    assert result.status == "ok"
    assert collector.frames_total > 0
    assert snapshot["telemetry"]["frames"] == collector.frames_total
    # every folded gauge is numeric — nothing torn leaked through
    for name, payload in snapshot["gauges"].items():
        if name.startswith("worker"):
            assert isinstance(payload["value"], (int, float)), name
    text = render_openmetrics(snapshot)
    assert validate_openmetrics(text) == [], text


# -- end-to-end: serve session observability -------------------------------


@pytest.fixture(scope="module")
def observed_session(fattree4):
    """A process-runtime serving session with fast telemetry, plus its
    line-JSON server — the fixture behind the end-to-end assertions."""
    from repro.serve.api import SessionServer
    from repro.serve.session import VerifierSession

    session = VerifierSession(
        fattree4,
        S2Options(
            num_workers=2,
            num_shards=4,
            runtime="process",
            telemetry_interval=1e-9,
        ),
        warm_boot=False,
    )
    server = SessionServer(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield session, server
    finally:
        server.stop()
        thread.join(timeout=10)
        session.close()


def test_serve_session_streams_frames_and_journals(observed_session):
    session, server = observed_session
    link = next(iter(session.snapshot.topology.links()))
    from repro.serve.deltas import LinkDelta

    session.apply_delta(
        LinkDelta(a=link.a.node, b=link.b.node, up=False), timeout=300
    )
    # statusz carries live per-worker frames from the process runtime
    status = server.handle({"op": "statusz"})
    assert status["ok"]
    assert status["frames"], "no telemetry frames reached the controller"
    for frame in status["frames"].values():
        assert validate_frame(frame) is None
    assert status["journal"]["last_seq"] >= 2
    assert status["last_commit_ts"] is not None
    assert status["worker_health"]["workers"]
    # the journal recorded the boot, the classification, and the commits
    events = server.handle({"op": "eventsz"})
    assert events["ok"]
    kinds = [e["kind"] for e in events["events"]]
    assert kinds[0] == "boot"
    assert "delta_classified" in kinds
    assert kinds.count("epoch_commit") >= 2
    seqs = [e["seq"] for e in events["events"]]
    assert seqs == sorted(seqs)
    # the metrics op serves valid OpenMetrics with worker series
    metrics = server.handle({"op": "metrics"})
    assert metrics["ok"]
    assert validate_openmetrics(metrics["text"]) == []
    assert 's2_worker_bdd_nodes{worker="0"}' in metrics["text"]
    assert "s2_serve_epoch" in metrics["text"]


def test_eventsz_replays_in_order_across_worker_respawn(observed_session):
    session, server = observed_session
    before = server.handle({"op": "eventsz"})["journal"]["last_seq"]
    # force a respawn: kill one worker process, then commit an epoch
    session._controller._pool.proxies[1]._process.kill()
    link = next(iter(session.snapshot.topology.links()))
    from repro.serve.deltas import LinkDelta

    session.apply_delta(
        LinkDelta(a=link.a.node, b=link.b.node, up=False), timeout=300
    )
    reply = server.handle({"op": "eventsz", "since": before})
    assert reply["ok"]
    kinds = [e["kind"] for e in reply["events"]]
    assert "worker_respawn" in kinds
    assert "epoch_commit" in kinds
    seqs = [e["seq"] for e in reply["events"]]
    assert seqs == list(range(before + 1, before + 1 + len(seqs)))
    # the respawned worker's telemetry keeps flowing under its new
    # incarnation (collector did not stale-drop the fresh stream)
    status = server.handle({"op": "statusz"})
    incarnations = {
        key: frame["incarnation"]
        for key, frame in status["frames"].items()
    }
    assert any(inc >= 1 for inc in incarnations.values()), incarnations


def test_health_is_machine_monitorable(observed_session):
    session, server = observed_session
    session.query(*sorted(session.reachability().endpoints)[:2])
    health = server.handle({"op": "health"})
    assert health["ok"]
    assert health["status"] in ("serving", "recomputing")
    assert health["journal"]["last_seq"] >= 1
    assert health["last_commit_age_seconds"] >= 0
    assert "recoveries" in health["worker_health"]
    status = server.handle({"op": "statusz"})
    assert status["query_latency"]["count"] >= 1


def test_draining_is_a_distinct_refusal(observed_session):
    session, server = observed_session
    from repro.serve.deltas import LinkDelta

    link = next(iter(session.snapshot.topology.links()))
    delta = LinkDelta(a=link.a.node, b=link.b.node, up=False)
    session._closed = True
    session._draining = True
    try:
        draining = server.handle(
            {"op": "delta", "kind": "link", "a": link.a.node, "b": link.b.node}
        )
        assert draining["error"] == "draining"
        session._draining = False
        closed = server.handle(
            {"op": "delta", "kind": "link", "a": link.a.node, "b": link.b.node}
        )
        assert closed["error"] == "closed"
    finally:
        session._closed = False
        session._draining = False
    # reopened: the same delta goes through the normal path
    assert session.submit_delta(delta).result(300).epoch == session.epoch


def test_top_renders_against_live_session(observed_session):
    _session, server = observed_session
    out = io.StringIO()  # StringIO has no isatty → non-TTY fallback
    code = run_top(server.host, server.port, interval=0.01, out=out)
    assert code == 0
    frame = out.getvalue()
    assert frame.count("repro top —") == 1  # non-TTY default: one shot
    assert "\x1b[" not in frame             # no ANSI without a TTY
    assert "WORKER" in frame and "worker0" in frame
    assert "events (last" in frame
    assert "epoch_commit" in frame


def test_top_reports_unreachable_session():
    assert run_top("127.0.0.1", 1, interval=0.01, out=io.StringIO()) == 1


def test_render_top_is_pure():
    status = {
        "status": "serving",
        "snapshot": "ft4",
        "epoch": 3,
        "queue_depth": 0,
        "runtime": "process",
        "workers": 2,
        "journal": {"last_seq": 7, "dropped": 0},
        "last_commit_age_seconds": 1.5,
        "query_latency": {"count": 10, "p50": 0.001, "p99": 0.004},
        "frames": {
            "0": _frame(worker=0, seq=5),
            "1": _frame(worker=1, seq=6, current_bytes=3 << 20),
        },
    }
    events = [
        {"seq": 7, "ts": time.time(), "kind": "epoch_commit",
         "attrs": {"epoch": 3}},
    ]
    now = time.time()
    text = render_top(status, events, now=now)
    assert "[serving]" in text and "epoch=3" in text
    assert "worker0" in text and "worker1" in text
    assert "p50=1.0ms" in text
    assert "#   7" in text and "epoch_commit" in text
    # render is a pure function of its inputs
    assert text == render_top(status, events, now=now)
