"""Graceful shutdown of the resident commands.

``repro worker --listen`` and ``repro serve`` both install SIGTERM and
SIGINT handlers that drain in-flight work and exit 0 — so a process
supervisor's stop is clean, not a crash that the next boot has to
recover from.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys

import threading

import pytest

from repro.dist.transport import RpcChannel, RpcServer

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _spawn(*argv):
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_worker_signal_drains_and_exits_zero(signum):
    proc = _spawn("worker", "--listen", "127.0.0.1:0")
    try:
        banner = proc.stdout.readline().strip()
        assert banner.startswith("worker listening on ")
        host, _, port = banner.rpartition(" ")[2].rpartition(":")
        channel = RpcChannel((host, int(port)))
        try:
            assert channel.call("__ping__", internal=True) == ("ok", "pong")
        finally:
            channel.close()
        proc.send_signal(signum)
        stdout, _stderr = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "worker: drained and shut down cleanly" in stdout
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(5.0)


def test_drain_stop_finishes_the_inflight_request():
    """``stop(drain=True)`` — what the SIGTERM handlers call — lets the
    request currently executing finish and deliver its response; only
    then does the connection wind down."""
    stall = threading.Event()
    entered = threading.Event()

    def handler(command, args, flow_id):
        entered.set()
        assert stall.wait(timeout=30)
        return "ok", ("done", command)

    server = RpcServer(handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    channel = RpcChannel((server.host, server.port))
    results = []

    def call():
        results.append(channel.call("slow_work"))

    caller = threading.Thread(target=call, daemon=True)
    caller.start()
    try:
        assert entered.wait(timeout=30)
        server.stop(drain=True)  # mid-request, as a SIGTERM would
        stall.set()
        caller.join(timeout=30)
        assert results == [("ok", ("done", "slow_work"))]
        thread.join(timeout=30)
        assert not thread.is_alive()
    finally:
        stall.set()
        channel.close()
        server.stop()


def test_serve_sigterm_drains_and_exits_zero():
    proc = _spawn(
        "serve",
        "fattree",
        "--k",
        "4",
        "--workers",
        "2",
        "--shards",
        "2",
        "--listen",
        "127.0.0.1:0",
    )
    try:
        banner = proc.stdout.readline().strip()
        match = re.match(
            r"serving \S+ on ([\d.]+):(\d+) \(epoch (\d+), "
            r"(\d+) endpoints, cold start\)",
            banner,
        )
        assert match, f"unexpected banner: {banner!r}"
        host, port = match.group(1), int(match.group(2))
        assert match.group(3) == "0"
        with socket.create_connection((host, port), timeout=60) as conn:
            conn.sendall(b'{"op": "health"}\n')
            response = json.loads(
                conn.makefile("r", encoding="utf-8").readline()
            )
        assert response["ok"]
        assert response["status"] == "serving"
        assert response["epoch"] == 0
        proc.send_signal(signal.SIGTERM)
        stdout, _stderr = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "serve: drained and shut down cleanly" in stdout
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(5.0)
