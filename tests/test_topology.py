"""Tests for the topology graph model."""

import pytest

from repro.net.ip import Prefix, parse_ip
from repro.net.topology import (
    Interface,
    InterfaceRef,
    Link,
    Topology,
    TopologyNode,
)


def make_pair():
    """Two nodes joined by one /31 link."""
    topo = Topology()
    a = TopologyNode("a")
    a.add_interface(Interface("eth0", parse_ip("10.0.0.0"), Prefix.parse("10.0.0.0/31")))
    b = TopologyNode("b")
    b.add_interface(Interface("eth0", parse_ip("10.0.0.1"), Prefix.parse("10.0.0.0/31")))
    topo.add_node(a)
    topo.add_node(b)
    topo.add_link(InterfaceRef("a", "eth0"), InterfaceRef("b", "eth0"))
    return topo


class TestConstruction:
    def test_add_and_lookup(self):
        topo = make_pair()
        assert len(topo) == 2
        assert "a" in topo and "c" not in topo
        assert topo.node("a").name == "a"

    def test_duplicate_node_rejected(self):
        topo = make_pair()
        with pytest.raises(ValueError):
            topo.add_node(TopologyNode("a"))

    def test_duplicate_interface_rejected(self):
        node = TopologyNode("x")
        node.add_interface(Interface("eth0", 1, Prefix.parse("10.0.0.0/31")))
        with pytest.raises(ValueError):
            node.add_interface(Interface("eth0", 2, Prefix.parse("10.0.0.0/31")))

    def test_link_requires_known_endpoints(self):
        topo = make_pair()
        with pytest.raises(KeyError):
            topo.add_link(
                InterfaceRef("a", "eth0"), InterfaceRef("zzz", "eth0")
            )
        with pytest.raises(KeyError):
            topo.add_link(
                InterfaceRef("a", "ethX"), InterfaceRef("b", "eth0")
            )


class TestQueries:
    def test_neighbors(self):
        topo = make_pair()
        assert topo.neighbors("a") == ["b"]
        assert topo.neighbors("b") == ["a"]

    def test_degree(self):
        topo = make_pair()
        assert topo.degree("a") == 1

    def test_link_between(self):
        topo = make_pair()
        link = topo.link_between("a", "b")
        assert link is not None
        assert link.other("a").node == "b"
        assert link.local("b").node == "b"
        assert topo.link_between("a", "a") is None

    def test_link_other_rejects_non_endpoint(self):
        topo = make_pair()
        link = topo.link_between("a", "b")
        with pytest.raises(KeyError):
            link.other("c")

    def test_interface_address(self):
        topo = make_pair()
        assert topo.interface_address(InterfaceRef("a", "eth0")) == parse_ip(
            "10.0.0.0"
        )

    def test_edge_list(self):
        topo = make_pair()
        assert topo.edge_list() == [("a", "b")]

    def test_is_connected(self):
        topo = make_pair()
        assert topo.is_connected()
        lonely = TopologyNode("c")
        topo.add_node(lonely)
        assert not topo.is_connected()

    def test_validate_accepts_matching_subnets(self):
        make_pair().validate()

    def test_validate_rejects_mismatched_subnets(self):
        topo = Topology()
        a = TopologyNode("a")
        a.add_interface(Interface("eth0", parse_ip("10.0.0.0"), Prefix.parse("10.0.0.0/31")))
        b = TopologyNode("b")
        b.add_interface(Interface("eth0", parse_ip("10.9.0.1"), Prefix.parse("10.9.0.0/31")))
        topo.add_node(a)
        topo.add_node(b)
        topo.add_link(InterfaceRef("a", "eth0"), InterfaceRef("b", "eth0"))
        with pytest.raises(ValueError):
            topo.validate()

    def test_subgraph(self, fattree4):
        topo = fattree4.topology
        pod0 = [n.name for n in topo.nodes() if n.pod == 0]
        sub = topo.subgraph_nodes(pod0)
        assert len(sub) == len(pod0)
        # pod-internal links survive; links to cores do not
        assert all(
            sub.node(l.a.node) and sub.node(l.b.node) for l in sub.links()
        )
        assert sub.is_connected()


class TestFatTreeShape:
    def test_counts(self, fattree4):
        topo = fattree4.topology
        roles = {}
        for node in topo.nodes():
            roles[node.role] = roles.get(node.role, 0) + 1
        assert roles == {"edge": 8, "agg": 8, "core": 4}

    def test_degrees(self, fattree4):
        topo = fattree4.topology
        for node in topo.nodes():
            if node.role == "edge":
                assert topo.degree(node.name) == 2
            elif node.role == "agg":
                assert topo.degree(node.name) == 4
            else:
                assert topo.degree(node.name) == 4

    def test_connected_and_valid(self, fattree4):
        assert fattree4.topology.is_connected()
        fattree4.topology.validate()

    def test_dcn_connected_and_valid(self, dcn1):
        assert dcn1.topology.is_connected()
        dcn1.topology.validate()
