"""Delta-equivalence under chaos: the serve-mode oracle.

A resident session absorbing deltas while the transport misbehaves —
sampled partitions, torn frames, reorders, crashes — plus one worker
process force-killed between epochs, must end bit-identical to a cold
start at the final configuration: same RIBs, same reachability
verdicts.  Anything less means a fault leaked into the results instead
of being healed by the epoch fence and supervisor recovery.
"""

from __future__ import annotations

import pytest

from repro.config.loader import snapshot_from_texts
from repro.dataplane.queries import Query
from repro.dist.controller import S2Controller, S2Options
from repro.dist.faults import sample_serve_plan
from repro.net.fattree import FatTreeSpec, render_configs
from repro.serve import ConfigTextDelta, LinkDelta, VerifierSession

from tests.conftest import normalize_ribs

NUM_WORKERS = 3
NUM_SHARDS = 8


@pytest.fixture(scope="module")
def ft4_texts():
    return render_configs(FatTreeSpec(k=4))


@pytest.fixture(scope="module")
def ft4(ft4_texts):
    return snapshot_from_texts(ft4_texts, name="ft4-chaos")


def _announce_delta(ft4_texts):
    host = sorted(
        h
        for h, (_d, t) in ft4_texts.items()
        if any(
            line.strip().startswith("network ")
            for line in t.splitlines()
        )
    )[0]
    dialect, text = ft4_texts[host]
    lines = text.splitlines()
    last_net = max(
        i
        for i, line in enumerate(lines)
        if line.strip().startswith("network ")
    )
    lines.insert(last_net + 1, " network 203.0.113.0 mask 255.255.255.0")
    return ConfigTextDelta(
        hostname=host, text="\n".join(lines), dialect=dialect
    )


def _oracle(snapshot):
    with S2Controller(
        snapshot, S2Options(num_workers=NUM_WORKERS, num_shards=NUM_SHARDS)
    ) as controller:
        controller.run_control_plane()
        endpoints = tuple(controller.prefix_holders())
        result = controller.checker().check_reachability(
            Query(sources=endpoints, destinations=endpoints)
        )
        return (
            normalize_ribs(controller.collected_ribs()),
            frozenset(result.pairs()),
        )


def _drive(session, ft4, ft4_texts, kill_worker: bool) -> None:
    """The delta schedule: announce, link down, (kill), link up."""
    link = next(iter(ft4.topology.links()))
    a, b = link.a.node, link.b.node
    result = session.apply_delta(_announce_delta(ft4_texts), timeout=300)
    assert result.kind == "announce"
    result = session.apply_delta(LinkDelta(a=a, b=b), timeout=300)
    assert result.kind == "full"
    if kill_worker:
        # A hard kill *between* epochs: no shard in flight, so the
        # death first surfaces when the next delta fans out and must
        # be healed there (respawn + checkpoint + epoch re-seed).
        session._controller._pool.proxies[1]._process.kill()
    result = session.apply_delta(LinkDelta(a=a, b=b, up=True), timeout=300)
    assert result.kind == "full"


def _assert_final_state(session) -> None:
    oracle_ribs, oracle_pairs = _oracle(session.snapshot)
    view = session.reachability()
    assert view.pairs == oracle_pairs
    assert normalize_ribs(view.ribs) == oracle_ribs
    assert not session.degraded
    assert session.health()["status"] == "serving"
    assert session.epoch == 3


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_socket_session_under_sampled_chaos(ft4, ft4_texts, seed):
    """Sampled network faults + a forced worker kill across three
    epochs over real TCP: final state equals the cold start."""
    plan = sample_serve_plan(seed, NUM_WORKERS)
    options = S2Options(
        num_workers=NUM_WORKERS,
        num_shards=NUM_SHARDS,
        runtime="socket",
        fault_plan=plan,
    )
    with VerifierSession(ft4, options) as session:
        _drive(session, ft4, ft4_texts, kill_worker=True)
        assert session._controller.supervisor.recoveries >= 1
        _assert_final_state(session)
    fired = sum(
        plan.count(kind)
        for kind in ("partition", "torn_frame", "reorder", "slow_link",
                     "crash")
    )
    assert fired >= 1, "the sampled plan never injected anything"


def test_process_session_survives_worker_kill(ft4, ft4_texts):
    options = S2Options(
        num_workers=NUM_WORKERS, num_shards=NUM_SHARDS, runtime="process"
    )
    with VerifierSession(ft4, options) as session:
        _drive(session, ft4, ft4_texts, kill_worker=True)
        assert session._controller.supervisor.recoveries >= 1
        _assert_final_state(session)


def test_socket_session_kill_during_incremental_delta(ft4, ft4_texts):
    """The kill lands before an *announce* delta: the respawn must be
    re-seeded from the new snapshot (not boot-time configure args) and
    fenced into the new epoch before its dirty shards replay."""
    options = S2Options(
        num_workers=NUM_WORKERS, num_shards=NUM_SHARDS, runtime="socket"
    )
    with VerifierSession(ft4, options) as session:
        session._controller._pool.proxies[0]._process.kill()
        result = session.apply_delta(
            _announce_delta(ft4_texts), timeout=300
        )
        assert result.kind == "announce"
        assert result.shards_reused >= 1
        assert session._controller.supervisor.recoveries >= 1
        oracle_ribs, oracle_pairs = _oracle(session.snapshot)
        view = session.reachability()
        assert view.pairs == oracle_pairs
        assert normalize_ribs(view.ribs) == oracle_ribs
        assert not session.degraded
