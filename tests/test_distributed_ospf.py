"""Distributed IGP-before-EGP orchestration (§4.2).

A mixed-protocol network: an OSPF core computes loopback reachability,
and BGP redistributes OSPF routes to an external peer.  The CPO must run
the OSPF fixed point first (distributed, through the same shadow/sidecar
machinery), install the results, and only then run BGP — and the whole
thing must equal the monolithic engine.
"""

import pytest

from tests.conftest import normalize_ribs
from repro.config.loader import make_snapshot, parse_device
from repro.dist.controller import S2Controller, S2Options
from repro.net.ip import Prefix
from repro.routing.engine import SimulationEngine
from repro.routing.route import Protocol


def mixed_snapshot():
    """r1 -- r2 -- r3 run OSPF (r1 has a loopback); r3 also speaks eBGP
    to an external router x and redistributes OSPF into BGP."""
    r1 = (
        "hostname r1\n"
        "interface e0\n ip address 10.0.0.0 255.255.255.254\n"
        "interface lo0\n ip address 172.16.0.1 255.255.255.255\n"
        "router ospf 1\n"
        " router-id 0.0.0.1\n"
        " network 0.0.0.0 255.255.255.255 area 0\n"
    )
    r2 = (
        "hostname r2\n"
        "interface e0\n ip address 10.0.0.1 255.255.255.254\n"
        "interface e1\n ip address 10.0.0.2 255.255.255.254\n"
        "router ospf 1\n"
        " router-id 0.0.0.2\n"
        " network 0.0.0.0 255.255.255.255 area 0\n"
    )
    r3 = (
        "hostname r3\n"
        "interface e0\n ip address 10.0.0.3 255.255.255.254\n"
        "interface e1\n ip address 10.0.0.4 255.255.255.254\n"
        "router ospf 1\n"
        " router-id 0.0.0.3\n"
        " network 10.0.0.0 0.0.0.255 area 0\n"
        " passive-interface e1\n"
        "router bgp 65003\n"
        " neighbor 10.0.0.5 remote-as 65099\n"
        " redistribute ospf\n"
        " network 172.16.0.1 mask 255.255.255.255\n"
    )
    x = (
        "hostname x\n"
        "interface e0\n ip address 10.0.0.5 255.255.255.254\n"
        "router bgp 65099\n"
        " neighbor 10.0.0.4 remote-as 65003\n"
    )
    configs = {}
    for text in (r1, r2, r3, x):
        config = parse_device(text, "ciscoish")
        configs[config.hostname] = config
    return make_snapshot(configs)


LOOPBACK = Prefix.parse("172.16.0.1/32")


@pytest.fixture(scope="module")
def snapshot():
    return mixed_snapshot()


@pytest.fixture(scope="module")
def oracle(snapshot):
    engine = SimulationEngine(snapshot)
    routes = engine.run()
    return engine, routes


class TestMonolithicOrdering:
    def test_ospf_ran_first_and_installed(self, oracle):
        engine, _ = oracle
        assert engine.stats.ospf_rounds > 0
        r3_routes = engine.nodes["r3"].main_rib.routes_for(LOOPBACK)
        assert r3_routes and r3_routes[0].protocol is Protocol.OSPF
        assert r3_routes[0].metric == 2

    def test_bgp_advertises_loopback_to_external(self, oracle):
        _, routes = oracle
        got = routes["x"].get(LOOPBACK)
        assert got is not None
        assert got[0].as_path == (65003,)


class TestDistributedOrdering:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_equal_to_monolithic(self, snapshot, oracle, workers):
        _, expected = oracle
        with S2Controller(
            snapshot, S2Options(num_workers=workers)
        ) as controller:
            stats = controller.run_control_plane()
            assert stats.ospf_rounds > 0
            got = controller.collected_ribs()
            assert normalize_ribs(got) == normalize_ribs(expected)

    def test_ospf_vectors_crossed_workers(self, snapshot):
        # force r1 and r2 onto different workers (random scheme, 4 ways)
        with S2Controller(
            snapshot,
            S2Options(num_workers=4, partition_scheme="random"),
        ) as controller:
            controller.run_control_plane()
            # r3 (wherever it lives) learned the loopback over OSPF
            owner = controller.partition.assignment["r3"]
            worker = controller.workers[owner]
            node = worker.nodes["r3"]
            routes = node.main_rib.routes_for(LOOPBACK)
            assert routes and routes[0].protocol is Protocol.OSPF

    def test_process_runtime_handles_ospf(self, snapshot, oracle):
        _, expected = oracle
        with S2Controller(
            snapshot, S2Options(num_workers=2, runtime="process")
        ) as controller:
            controller.run_control_plane()
            got = controller.collected_ribs()
            assert normalize_ribs(got) == normalize_ribs(expected)
