"""Shared fixtures.

The FatTree-4 and DCN snapshots (and their monolithic simulation results)
are session-scoped: they are pure functions of the synthesizer inputs, and
many tests compare against them as the oracle.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.net.dcn import build_dcn
from repro.net.fattree import build_fattree
from repro.routing.engine import SimulationEngine

# Per-test wall-clock budget (seconds).  The fault-tolerance tests kill
# worker processes and rely on supervision timeouts; a regression there
# would otherwise hang the whole suite.  Hand-rolled on SIGALRM because
# the environment has no pytest-timeout plugin.
TEST_TIMEOUT = int(os.environ.get("S2_TEST_TIMEOUT", "300"))


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    use_alarm = (
        TEST_TIMEOUT > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return (yield)

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_TIMEOUT}s budget "
            f"(S2_TEST_TIMEOUT to change)"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.alarm(TEST_TIMEOUT)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def fattree4():
    return build_fattree(4)


@pytest.fixture(scope="session")
def fattree6():
    return build_fattree(6)


@pytest.fixture(scope="session")
def dcn1():
    return build_dcn(scale=1)


@pytest.fixture(scope="session")
def fattree4_sim(fattree4):
    engine = SimulationEngine(fattree4)
    routes = engine.run()
    return engine, routes


@pytest.fixture(scope="session")
def dcn1_sim(dcn1):
    engine = SimulationEngine(dcn1)
    routes = engine.run()
    return engine, routes


def normalize_ribs(result):
    """Canonical form for RIB equality across engines/runtimes."""
    return {
        host: {
            prefix: tuple(
                sorted(routes, key=lambda r: (r.from_node, r.next_hop))
            )
            for prefix, routes in table.items()
        }
        for host, table in result.items()
    }
