"""Tests for §7's runtime shard refinement (unforeseen dependencies).

The scenario: shards built from an *incomplete* DPDG (conditional-
advertisement edges omitted) separate the DCN's default route from the
external prefix it watches.  Without refinement, the conditional is
evaluated against a shard that can never contain the watch — the default
route's fate is computed from stale information.  With refinement, the
worker reports the dependency it observed at runtime, the CPO merges the
affected shards, recomputes, and the final RIBs match the oracle.
"""

import pytest

from tests.conftest import normalize_ribs
from repro.dist.controller import S2Controller, S2Options
from repro.dist.sharding import PrefixShard, build_dpdg, make_shards
from repro.net.dcn import DEFAULT_PREFIX, EXTERNAL_PREFIX
from repro.net.ip import Prefix


def split_shards(snapshot):
    """Shards from the incomplete DPDG, forcing 0/0 and 8.8.8/24 apart."""
    shards = make_shards(
        snapshot, 4, include_conditionals=False
    )
    holder = {p: s.index for s in shards for p in s.prefixes}
    if holder[DEFAULT_PREFIX] == holder[EXTERNAL_PREFIX]:
        # the greedy packer happened to co-locate them: separate manually
        rebuilt = []
        for shard in shards:
            prefixes = set(shard.prefixes)
            if DEFAULT_PREFIX in prefixes and EXTERNAL_PREFIX in prefixes:
                prefixes.discard(EXTERNAL_PREFIX)
                rebuilt.append(PrefixShard(shard.index, frozenset(prefixes)))
            else:
                rebuilt.append(shard)
        rebuilt.append(
            PrefixShard(len(rebuilt), frozenset([EXTERNAL_PREFIX]))
        )
        shards = rebuilt
    return shards


class TestIncompleteDpdg:
    def test_incomplete_dpdg_lacks_conditional_edges(self, dcn1):
        full = build_dpdg(dcn1)
        partial = build_dpdg(dcn1, include_conditionals=False)
        assert (DEFAULT_PREFIX, EXTERNAL_PREFIX) in full.edges
        assert (DEFAULT_PREFIX, EXTERNAL_PREFIX) not in partial.edges
        # aggregate edges survive
        assert any(
            a == Prefix.parse("10.3.0.0/16") for a, _b in partial.edges
        )

    def test_split_fixture_really_splits(self, dcn1):
        shards = split_shards(dcn1)
        holder = {p: s.index for s in shards for p in s.prefixes}
        assert holder[DEFAULT_PREFIX] != holder[EXTERNAL_PREFIX]


class TestRefinement:
    def test_refinement_restores_oracle_ribs(self, dcn1, dcn1_sim):
        _, expected = dcn1_sim
        shards = split_shards(dcn1)
        with S2Controller(dcn1, S2Options(num_workers=4)) as controller:
            controller.cpo.run(shards, refine=True)
            got = controller.collected_ribs()
            assert normalize_ribs(got) == normalize_ribs(expected)
            assert controller.cpo.stats.shards_merged > 0

    def test_dependencies_observed_at_runtime(self, dcn1):
        shards = split_shards(dcn1)
        # run just the shard holding the default route, unrefined
        target = next(s for s in shards if DEFAULT_PREFIX in s)
        with S2Controller(dcn1, S2Options(num_workers=2)) as controller:
            controller.cpo._converge_shard(target)
            observed = controller.cpo._collect_observed_dependencies()
            assert (DEFAULT_PREFIX, EXTERNAL_PREFIX) in observed

    def test_no_refinement_needed_with_complete_dpdg(self, dcn1, dcn1_sim):
        _, expected = dcn1_sim
        shards = make_shards(dcn1, 4)  # complete DPDG
        with S2Controller(dcn1, S2Options(num_workers=2)) as controller:
            controller.cpo.run(shards, refine=True)
            assert controller.cpo.stats.shards_merged == 0
            got = controller.collected_ribs()
            assert normalize_ribs(got) == normalize_ribs(expected)

    def test_refinement_supersedes_flushed_results(self, dcn1, dcn1_sim):
        """Even when the watched prefix's shard was already flushed, the
        recomputed merged shard's results win (monotone flush indices)."""
        _, expected = dcn1_sim
        shards = split_shards(dcn1)
        # order so the external prefix's shard completes FIRST
        ordered = sorted(
            shards, key=lambda s: 0 if EXTERNAL_PREFIX in s else 1
        )
        with S2Controller(dcn1, S2Options(num_workers=2)) as controller:
            controller.cpo.run(ordered, refine=True)
            got = controller.collected_ribs()
            assert normalize_ribs(got) == normalize_ribs(expected)

    def test_options_flag_wires_through(self, dcn1, dcn1_sim):
        """The public S2Options.refine_shards path: with the complete
        DPDG the flag is a no-op but the pipeline must still be exact."""
        from repro.core.s2 import verify_snapshot

        _, expected = dcn1_sim
        result = verify_snapshot(
            dcn1,
            S2Options(num_workers=2, num_shards=5, refine_shards=True),
        )
        assert result.ok
        assert result.cp_stats.shards_merged == 0

    def test_fattree_unaffected_by_refinement_flag(
        self, fattree4, fattree4_sim
    ):
        _, expected = fattree4_sim
        shards = make_shards(fattree4, 3)
        with S2Controller(fattree4, S2Options(num_workers=2)) as controller:
            controller.cpo.run(shards, refine=True)
            assert controller.cpo.stats.shards_merged == 0
            assert normalize_ribs(controller.collected_ribs()) == (
                normalize_ribs(expected)
            )
