"""The line-JSON TCP surface of ``repro serve``.

End-to-end over real sockets where the wire matters (health, query,
delta, stop round-trips; concurrent connections), and directly against
``SessionServer.handle`` for the error-mapping table (busy/degraded/
closed/bad-request are typed refusals, not stack traces).
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.config.loader import snapshot_from_texts
from repro.dist.controller import S2Options
from repro.net.fattree import FatTreeSpec, render_configs
from repro.serve import (
    DeltaError,
    SessionBusyError,
    SessionDegradedError,
    SessionServer,
    VerifierSession,
    parse_delta,
)
from repro.serve.deltas import ConfigTextDelta, LinkDelta


@pytest.fixture(scope="module")
def ft4_texts():
    return render_configs(FatTreeSpec(k=4))


@pytest.fixture(scope="module")
def served(ft4_texts):
    """One session + server shared by the module; tests that mutate do
    so with config no-ops (same text re-applied), which bump the epoch
    without changing verdicts."""
    snapshot = snapshot_from_texts(ft4_texts, name="ft4-api")
    session = VerifierSession(
        snapshot, S2Options(num_workers=2, num_shards=4)
    )
    server = SessionServer(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield session, server
    finally:
        server.stop()
        thread.join(timeout=10)
        session.close()


def _roundtrip(server: SessionServer, *requests):
    """Send JSON lines over a real socket, one response per request."""
    responses = []
    with socket.create_connection(
        (server.host, server.port), timeout=60
    ) as conn:
        reader = conn.makefile("r", encoding="utf-8")
        for request in requests:
            line = (
                request
                if isinstance(request, str)
                else json.dumps(request)
            )
            conn.sendall((line + "\n").encode("utf-8"))
            responses.append(json.loads(reader.readline()))
    return responses


# -- parse_delta ------------------------------------------------------------


def test_parse_delta_builds_typed_deltas():
    config = parse_delta(
        {"kind": "config", "hostname": "edge-0-0", "text": "hostname x"}
    )
    assert isinstance(config, ConfigTextDelta)
    link = parse_delta({"kind": "link", "a": "x", "b": "y"})
    assert isinstance(link, LinkDelta) and not link.up
    up = parse_delta({"kind": "link", "a": "x", "b": "y", "state": "up"})
    assert up.up
    for bad in (
        {"kind": "config", "hostname": "x"},  # no text
        {"kind": "link", "a": "x"},  # no b
        {"kind": "link", "a": "x", "b": "y", "state": "sideways"},
        {"kind": "flap"},
        {},
    ):
        with pytest.raises(DeltaError):
            parse_delta(bad)


# -- the wire ---------------------------------------------------------------


def test_health_and_query_over_the_wire(served):
    session, server = served
    (health,) = _roundtrip(server, {"op": "health"})
    assert health["ok"]
    assert health["status"] in ("serving", "recomputing")
    assert health["snapshot"] == "ft4-api"
    view = session.reachability()
    src, dst = sorted(view.endpoints)[:2]
    query, routes = _roundtrip(
        server,
        {"op": "query", "src": src, "dst": dst},
        {"op": "routes", "node": src},
    )
    assert query["ok"]
    assert query["holds"] == ((src, dst) in view.pairs)
    assert not query["degraded"]
    assert routes["ok"] and routes["routes"]


def test_delta_over_the_wire_commits_an_epoch(served, ft4_texts):
    session, server = served
    host = sorted(
        h
        for h, (_d, t) in ft4_texts.items()
        if any(
            l.strip().startswith("network ") for l in t.splitlines()
        )
    )[0]
    dialect, text = ft4_texts[host]
    before = session.epoch
    (response,) = _roundtrip(
        server,
        {
            "op": "delta",
            "kind": "config",
            "hostname": host,
            "text": text,
            "dialect": dialect,
            "timeout": 300,
        },
    )
    assert response["ok"]
    assert response["epoch"] == before + 1
    assert response["kind"] == "announce"
    assert response["shards_recomputed"] == 0
    assert response["lost_pairs"] == []
    assert session.epoch == before + 1


def test_bad_requests_are_typed_refusals(served):
    _session, server = served
    not_json, not_object, no_op, bad_kind, bad_node = _roundtrip(
        server,
        "this is not json",
        json.dumps(["a", "list"]),
        {"op": "transmogrify"},
        {"op": "delta", "kind": "flap"},
        {"op": "routes", "node": "no-such-node"},
    )
    for response in (not_json, not_object, no_op, bad_kind, bad_node):
        assert not response["ok"]
        assert response["error"] == "bad-request"


def test_concurrent_connections_each_get_their_answers(served):
    session, server = served
    view = session.reachability()
    src, dst = sorted(view.endpoints)[:2]
    results = []
    errors = []

    def client():
        try:
            results.append(
                _roundtrip(
                    server,
                    {"op": "health"},
                    {"op": "query", "src": src, "dst": dst},
                )
            )
        except Exception as exc:  # noqa: BLE001 — surfaced via errors
            errors.append(exc)

    threads = [threading.Thread(target=client) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    assert len(results) == 4
    for health, query in results:
        assert health["ok"] and query["ok"]


# -- error mapping (handle(), no sockets) -----------------------------------


def _erroring_server(served, exc):
    session, _server = served
    server = SessionServer.__new__(SessionServer)
    server.session = session

    def raise_it(_delta, timeout=None):
        raise exc

    server.session = type(
        "S", (), {"apply_delta": staticmethod(raise_it)}
    )()
    return server


def test_handle_maps_session_errors_to_codes(served):
    request = {"op": "delta", "kind": "link", "a": "x", "b": "y"}
    for exc, code in (
        (SessionBusyError("queue full"), "busy"),
        (SessionDegradedError("read-only"), "degraded"),
        (DeltaError("nope"), "bad-request"),
        (RuntimeError("boom"), "internal"),
    ):
        response = _erroring_server(served, exc).handle(request)
        assert not response["ok"]
        assert response["error"] == code


def test_stop_over_the_wire_shuts_the_server_down(ft4_texts):
    snapshot = snapshot_from_texts(ft4_texts, name="ft4-stop")
    with VerifierSession(
        snapshot, S2Options(num_workers=2, num_shards=2)
    ) as session:
        server = SessionServer(session)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        (ack,) = _roundtrip(server, {"op": "stop"})
        assert ack["ok"] and ack["stopping"]
        thread.join(timeout=10)
        assert not thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection(
                (server.host, server.port), timeout=5
            )
