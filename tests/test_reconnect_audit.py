"""State audits on worker reconnect and respawn.

A reconnection or respawn is an *incarnation change*: state derived from
the previous incarnation — liveness suspicion on the channel, send-side
dedup memory aimed at the peer — must be discarded, or the healed link
keeps paying for (or miscounting against) a peer that no longer exists.
"""

from __future__ import annotations

import threading

import pytest

from repro.bdd.serialize import SendDedupCache
from repro.dist.controller import (
    S2Controller,
    S2Options,
    WorkerSupervisor,
)
from repro.dist.faults import StaleEpochError, WorkerDiedError
from repro.dist.sidecar import Sidecar
from repro.dist.storage import RouteStore
from repro.dist.transport import RpcChannel, RpcServer


# -- the channel: reconnect clears liveness suspicion -----------------------


def test_reconnect_clears_suspect_state():
    """Regression: a channel that went suspect (missed heartbeats) and
    then re-dialed successfully must be healthy again *immediately* —
    the suspicion belonged to the dead connection, not the new one."""
    server = RpcServer(lambda command, args, flow_id: ("ok", None))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    channel = RpcChannel((server.host, server.port))
    try:
        channel.connect()
        channel._drop_connection()  # the blip that made it suspect...
        channel._suspect_count = RpcChannel.SUSPECT_AFTER
        assert not channel.healthy()
        channel.connect()  # ...heals: no RPC has completed yet
        assert channel.healthy()
        assert channel._suspect_count == 0
    finally:
        channel.close()
        server.stop()
        thread.join(5.0)


# -- the supervisor: respawn invalidates dedup memory toward the peer -------


class _StubWorker:
    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.resets = 0
        self.restored = "untouched"
        self.epoch_seeds = []

        class _Resources:
            respawns = 0

        self.resources = _Resources()

    def reset(self) -> None:
        self.resets += 1

    def restore_ospf_state(self, state) -> None:
        self.restored = state

    def begin_epoch(self, epoch: int) -> None:
        self.epoch_seeds.append(epoch)


def _supervised_pair(tmp_path):
    workers = [_StubWorker(0), _StubWorker(1)]
    sidecars = [Sidecar(worker) for worker in workers]
    for sidecar in sidecars:
        sidecar.register_peers(sidecars)
    supervisor = WorkerSupervisor(
        workers, RouteStore(str(tmp_path)), sidecars=sidecars
    )
    return workers, sidecars, supervisor


def test_recover_drops_dedup_caches_toward_the_respawned_peer(tmp_path):
    workers, sidecars, supervisor = _supervised_pair(tmp_path)
    # Both sidecars hold send-dedup memory toward both peers.
    for sidecar in sidecars:
        sidecar._packet_dedup = {0: SendDedupCache(), 1: SendDedupCache()}
    supervisor.recover(WorkerDiedError("gone", worker_id=1))
    assert workers[1].resets == 1
    assert workers[1].resources.respawns == 1
    for sidecar in sidecars:
        # Memory toward the dead incarnation is gone; toward the
        # surviving peer it is kept.
        assert 1 not in sidecar._packet_dedup
        assert 0 in sidecar._packet_dedup
    assert supervisor.recoveries == 1
    assert supervisor.stale_epoch_rejections == 0


def test_recover_reseeds_the_serving_epoch(tmp_path):
    workers, _sidecars, supervisor = _supervised_pair(tmp_path)
    supervisor.epoch = 7
    supervisor.recover(StaleEpochError("stale", worker_id=1))
    # Fresh contexts boot at epoch -1; recovery must re-admit the
    # worker past the fence before any shard replays on it.
    assert workers[1].epoch_seeds == [7]
    assert workers[0].epoch_seeds == []
    assert supervisor.stale_epoch_rejections == 1


def test_recover_rejects_unknown_worker(tmp_path):
    _workers, _sidecars, supervisor = _supervised_pair(tmp_path)
    with pytest.raises(WorkerDiedError):
        supervisor.recover(WorkerDiedError("who", worker_id=9))
    assert supervisor.recoveries == 0


# -- the controller: full reconfigure resets every sender's memory ----------


def test_reconfigure_invalidates_every_send_cache(fattree4):
    """A full reconfigure logically respawns the whole fleet: every
    receive side forgets, so every send side must forget too."""
    with S2Controller(
        fattree4, S2Options(num_workers=2, num_shards=2)
    ) as controller:
        assert controller.sidecars, "sequential runtime has sidecars"
        for sidecar in controller.sidecars:
            sidecar._packet_dedup = {0: SendDedupCache()}
        controller.reconfigure(fattree4)
        for sidecar in controller.sidecars:
            assert sidecar._packet_dedup == {}
