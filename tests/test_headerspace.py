"""Tests for the packet-header encoding and ACL compilation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.engine import FALSE, TRUE
from repro.bdd.headerspace import ALL_FIELDS, FIELD_WIDTHS, HeaderEncoding
from repro.config.ast import Acl, AclLine, Action
from repro.net.ip import Prefix


class TestEncodingLayout:
    def test_default_layout(self):
        enc = HeaderEncoding()
        assert enc.fields == ("dst",)
        assert enc.num_vars == 32

    def test_full_5tuple_is_104_bits(self):
        enc = HeaderEncoding(fields=ALL_FIELDS, metadata_bits=3)
        assert enc.header_bits == 104  # the paper's header size
        assert enc.num_vars == 107

    def test_field_bases_are_disjoint(self):
        enc = HeaderEncoding(fields=ALL_FIELDS)
        spans = []
        for name in ALL_FIELDS:
            base = enc.field_base(name)
            spans.append((base, base + FIELD_WIDTHS[name]))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start

    def test_metadata_vars_after_header(self):
        enc = HeaderEncoding(fields=("dst",), metadata_bits=2)
        assert enc.metadata_var(0) == 32
        assert enc.metadata_var(1) == 33
        with pytest.raises(IndexError):
            enc.metadata_var(2)

    def test_dst_mandatory(self):
        with pytest.raises(ValueError):
            HeaderEncoding(fields=("src",))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            HeaderEncoding(fields=("dst", "vlan"))

    def test_missing_field_lookup(self):
        enc = HeaderEncoding()
        assert not enc.has_field("src")
        with pytest.raises(KeyError):
            enc.field_base("src")


class TestPrefixBdd:
    def test_prefix_counts(self):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        u = enc.prefix_bdd(engine, Prefix.parse("10.0.0.0/8"))
        assert engine.sat_count(u, 32) == 1 << 24

    def test_full_space(self):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        assert enc.prefix_bdd(engine, Prefix.parse("0.0.0.0/0")) == TRUE

    def test_host_prefix(self):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        u = enc.prefix_bdd(engine, Prefix.parse("1.2.3.4/32"))
        assert engine.sat_count(u, 32) == 1

    def test_nesting(self):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        outer = enc.prefix_bdd(engine, Prefix.parse("10.0.0.0/8"))
        inner = enc.prefix_bdd(engine, Prefix.parse("10.1.0.0/16"))
        assert engine.implies(inner, outer)

    def test_disjoint_prefixes(self):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        a = enc.prefix_bdd(engine, Prefix.parse("10.0.0.0/8"))
        b = enc.prefix_bdd(engine, Prefix.parse("11.0.0.0/8"))
        assert engine.and_(a, b) == FALSE

    @given(
        st.integers(0, (1 << 32) - 1),
        st.integers(0, 32),
        st.integers(0, (1 << 32) - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_membership_matches_prefix(self, network, length, probe):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        prefix = Prefix(network, length)
        u = enc.prefix_bdd(engine, prefix)
        member = enc.value_bdd(engine, "dst", probe)
        expected = prefix.contains_ip(probe)
        assert (engine.and_(u, member) != FALSE) == expected


class TestRangeBdd:
    @pytest.fixture(scope="class")
    def env(self):
        enc = HeaderEncoding(fields=("dst", "dport"))
        return enc, enc.make_engine()

    def test_full_range(self, env):
        enc, engine = env
        assert enc.range_bdd(engine, "dport", 0, 65535) == TRUE

    def test_empty_range(self, env):
        enc, engine = env
        assert enc.range_bdd(engine, "dport", 10, 5) == FALSE

    def test_single_value(self, env):
        enc, engine = env
        u = enc.range_bdd(engine, "dport", 443, 443)
        assert u == enc.value_bdd(engine, "dport", 443)

    @given(st.integers(0, 65535), st.integers(0, 65535))
    @settings(max_examples=40, deadline=None)
    def test_range_cardinality(self, a, b):
        enc = HeaderEncoding(fields=("dst", "dport"))
        engine = enc.make_engine()
        low, high = min(a, b), max(a, b)
        u = enc.range_bdd(engine, "dport", low, high)
        # count over the dport bits only: quantify dst away by counting
        # over all vars then dividing by the dst space
        total = engine.sat_count(u)
        assert total == (high - low + 1) << 32

    @given(
        st.integers(0, 65535), st.integers(0, 65535), st.integers(0, 65535)
    )
    @settings(max_examples=60, deadline=None)
    def test_range_membership(self, a, b, probe):
        enc = HeaderEncoding(fields=("dst", "dport"))
        engine = enc.make_engine()
        low, high = min(a, b), max(a, b)
        u = enc.range_bdd(engine, "dport", low, high)
        member = enc.value_bdd(engine, "dport", probe)
        assert (engine.and_(u, member) != FALSE) == (low <= probe <= high)

    def test_negative_low_clamped(self, env):
        """A negative bound used to floor-mod into wrong cubes; it must
        behave exactly like a bound of 0."""
        enc, engine = env
        assert enc.range_bdd(engine, "dport", -5, 100) == enc.range_bdd(
            engine, "dport", 0, 100
        )

    def test_high_beyond_domain_clamped(self, env):
        enc, engine = env
        assert enc.range_bdd(engine, "dport", 65000, 70000) == enc.range_bdd(
            engine, "dport", 65000, 65535
        )

    def test_fully_out_of_domain_covers_everything(self, env):
        enc, engine = env
        assert enc.range_bdd(engine, "dport", -10, 1 << 20) == TRUE

    @given(st.integers(-200, 65535 + 200), st.integers(-200, 65535 + 200))
    @settings(max_examples=40, deadline=None)
    def test_out_of_domain_cardinality(self, a, b):
        enc = HeaderEncoding(fields=("dst", "dport"))
        engine = enc.make_engine()
        low, high = min(a, b), max(a, b)
        u = enc.range_bdd(engine, "dport", low, high)
        expected = max(0, min(high, 65535) - max(low, 0) + 1)
        assert engine.sat_count(u) == expected << 32


def acl_of(*lines: AclLine) -> Acl:
    return Acl(name="T", lines=list(lines))


class TestAclCompilation:
    @pytest.fixture(scope="class")
    def env(self):
        enc = HeaderEncoding(fields=("dst", "src", "proto", "dport"))
        return enc, enc.make_engine()

    def test_permit_then_implicit_deny(self, env):
        enc, engine = env
        acl = acl_of(
            AclLine(10, Action.PERMIT, dst=Prefix.parse("10.0.0.0/8"))
        )
        permitted = enc.acl_bdd(engine, acl)
        inside = enc.prefix_bdd(engine, Prefix.parse("10.1.0.0/16"))
        outside = enc.prefix_bdd(engine, Prefix.parse("11.0.0.0/8"))
        assert engine.implies(inside, permitted)
        assert engine.and_(outside, permitted) == FALSE

    def test_first_match_wins(self, env):
        enc, engine = env
        acl = acl_of(
            AclLine(10, Action.DENY, dst=Prefix.parse("10.1.0.0/16")),
            AclLine(20, Action.PERMIT, dst=Prefix.parse("10.0.0.0/8")),
        )
        permitted = enc.acl_bdd(engine, acl)
        denied = enc.prefix_bdd(engine, Prefix.parse("10.1.0.0/16"))
        allowed = enc.prefix_bdd(engine, Prefix.parse("10.2.0.0/16"))
        assert engine.and_(denied, permitted) == FALSE
        assert engine.implies(allowed, permitted)

    def test_lines_sorted_by_seq(self, env):
        enc, engine = env
        # same lines, shuffled seq order in the list
        acl = Acl(
            name="T",
            lines=[
                AclLine(20, Action.PERMIT, dst=Prefix.parse("10.0.0.0/8")),
                AclLine(10, Action.DENY, dst=Prefix.parse("10.1.0.0/16")),
            ],
        )
        permitted = enc.acl_bdd(engine, acl)
        denied = enc.prefix_bdd(engine, Prefix.parse("10.1.0.0/16"))
        assert engine.and_(denied, permitted) == FALSE

    def test_protocol_and_port_constraints(self, env):
        enc, engine = env
        acl = acl_of(
            AclLine(
                10,
                Action.PERMIT,
                protocol=6,
                dst_port=(80, 443),
            )
        )
        permitted = enc.acl_bdd(engine, acl)
        tcp_http = engine.and_(
            enc.value_bdd(engine, "proto", 6),
            enc.value_bdd(engine, "dport", 80),
        )
        udp_http = engine.and_(
            enc.value_bdd(engine, "proto", 17),
            enc.value_bdd(engine, "dport", 80),
        )
        assert engine.implies(tcp_http, permitted)
        assert engine.and_(udp_http, permitted) == FALSE

    def test_src_port_constrains_under_full_5tuple(self):
        """Regression: ``src_port`` was silently ignored (only dst_port
        was compiled), permitting packets an ACL should block."""
        enc = HeaderEncoding(fields=ALL_FIELDS)
        engine = enc.make_engine()
        acl = acl_of(
            AclLine(
                10,
                Action.PERMIT,
                protocol=6,
                src_port=(1024, 2048),
                dst_port=(443, 443),
            )
        )
        permitted = enc.acl_bdd(engine, acl)
        good = engine.and_(
            enc.value_bdd(engine, "proto", 6),
            engine.and_(
                enc.value_bdd(engine, "sport", 1500),
                enc.value_bdd(engine, "dport", 443),
            ),
        )
        bad_sport = engine.and_(
            enc.value_bdd(engine, "proto", 6),
            engine.and_(
                enc.value_bdd(engine, "sport", 80),
                enc.value_bdd(engine, "dport", 443),
            ),
        )
        assert engine.implies(good, permitted)
        assert engine.and_(bad_sport, permitted) == FALSE

    def test_src_port_line_cardinality(self):
        enc = HeaderEncoding(fields=ALL_FIELDS)
        engine = enc.make_engine()
        line = AclLine(10, Action.PERMIT, src_port=(100, 199))
        matched = engine.sat_count(enc.acl_line_bdd(engine, line))
        free_bits = enc.num_vars - 16  # everything except sport is free
        assert matched == 100 << free_bits

    def test_unencoded_field_is_wildcard(self):
        # src constraint ignored when src not encoded
        enc = HeaderEncoding(fields=("dst",))
        engine = enc.make_engine()
        acl = acl_of(
            AclLine(10, Action.PERMIT, src=Prefix.parse("10.0.0.0/8"))
        )
        assert enc.acl_bdd(engine, acl) == TRUE

    def test_empty_acl_denies_all(self, env):
        enc, engine = env
        assert enc.acl_bdd(engine, acl_of()) == FALSE

    @given(
        st.lists(
            st.builds(
                AclLine,
                seq=st.integers(1, 100),
                action=st.sampled_from([Action.PERMIT, Action.DENY]),
                dst=st.one_of(
                    st.none(),
                    st.builds(
                        Prefix,
                        st.integers(0, (1 << 32) - 1),
                        st.integers(0, 8),
                    ),
                ),
            ),
            max_size=5,
        ),
        st.integers(0, (1 << 32) - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_against_reference_evaluator(self, lines, probe_dst):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        acl = Acl(name="T", lines=lines)
        permitted = enc.acl_bdd(engine, acl)
        probe = enc.value_bdd(engine, "dst", probe_dst)
        got = engine.and_(probe, permitted) != FALSE
        expected = _reference_permits(acl, probe_dst)
        assert got == expected


def _reference_permits(acl: Acl, dst: int) -> bool:
    for line in acl.sorted_lines():
        if line.dst is not None and not line.dst.contains_ip(dst):
            continue
        return line.action is Action.PERMIT
    return False


class TestDescribe:
    def test_describe_assignment(self):
        enc = HeaderEncoding(fields=("dst",), metadata_bits=1)
        engine = enc.make_engine()
        u = engine.and_(
            enc.value_bdd(engine, "dst", (10 << 24) | 1),
            engine.var(enc.metadata_var(0)),
        )
        text = enc.describe_assignment(engine.any_sat(u))
        assert "dst=10.0.0.1" in text and "meta[0]=1" in text

    def test_describe_empty(self):
        enc = HeaderEncoding()
        assert enc.describe_assignment({}) == "any"


def _prefix_strategy():
    return st.tuples(
        st.integers(0, (1 << 32) - 1), st.integers(0, 32)
    ).map(lambda t: Prefix(t[0], t[1]))


class TestPrefixSetBdd:
    def test_empty_set(self):
        enc = HeaderEncoding()
        assert enc.prefix_set_bdd(enc.make_engine(), []) == FALSE

    def test_default_route_covers_all(self):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        assert enc.prefix_set_bdd(engine, [Prefix.parse("0.0.0.0/0")]) == TRUE

    def test_subsumed_prefix_collapses(self):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        covering = enc.prefix_set_bdd(engine, [Prefix.parse("10.0.0.0/8")])
        both = enc.prefix_set_bdd(
            engine,
            [Prefix.parse("10.1.0.0/16"), Prefix.parse("10.0.0.0/8")],
        )
        assert both == covering

    def test_builds_without_apply_ops(self):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        prefixes = [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("192.168.0.0/16"),
            Prefix.parse("172.16.4.0/24"),
        ]
        ops_before = engine.ops
        enc.prefix_set_bdd(engine, prefixes)
        assert engine.ops == ops_before

    def test_width_mismatch_rejected(self):
        enc = HeaderEncoding()
        with pytest.raises(ValueError):
            enc.prefix_set_bdd(
                enc.make_engine(), [Prefix.parse("2001:db8::/32")]
            )

    @given(st.lists(_prefix_strategy(), max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_chained_or(self, prefixes):
        """The bulk trie build must equal the O(n) or_-fold it replaces."""
        enc = HeaderEncoding()
        engine = enc.make_engine()
        bulk = enc.prefix_set_bdd(engine, prefixes)
        chained = FALSE
        for prefix in prefixes:
            chained = engine.or_(chained, enc.prefix_bdd(engine, prefix))
        assert bulk == chained
