"""Chaos fuzzing: the differential oracle over TCP workers.

The CI chaos-smoke bar: pinned-seed networks run under the ``socket``
runtime with a *sampled* network-fault plan (partition / reorder /
slow_link / torn_frame, drawn from the same seed every time) and must
still converge to the monolithic oracle's RIBs bit-for-bit.  This is
the fuzzed generalization of the hand-written acceptance scenario in
``test_socket_runtime.py``.
"""

from __future__ import annotations

import pytest

from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, load_corpus
from repro.fuzz.generators import generate_spec
from repro.fuzz.oracle import CheckPlan, DifferentialOracle

#: Pinned generator seeds.  Each draws a different sampled network-fault
#: plan (the fault seed follows the generator seed), so together they
#: cover several of the four network kinds.
GENERATOR_SEEDS = [3, 11]

EQUIVALENT_CASES = [
    case
    for case in load_corpus(DEFAULT_CORPUS_DIR)
    if case.expect == "equivalent"
]


def _chaos_plan(fault_seed: int) -> CheckPlan:
    return CheckPlan(
        include_threaded=False,
        include_socket=True,
        fault_seed=fault_seed,
    )


def test_sampled_network_plans_cover_the_kinds():
    """The sampled plans actually exercise the chaos surface: across a
    seed range, every network kind is drawn at least once."""
    from repro.dist.faults import NETWORK_KINDS, sample_network_plan

    drawn = set()
    for seed in range(24):
        plan = sample_network_plan(seed, num_workers=3)
        drawn.update(spec.kind for spec in plan.specs)
        assert plan.specs, f"seed {seed} drew an empty plan"
        for spec in plan.specs:
            assert spec.kind in NETWORK_KINDS
            assert spec.times >= 1        # bounded, so runs terminate
    assert drawn == set(NETWORK_KINDS)


@pytest.mark.parametrize("seed", GENERATOR_SEEDS)
def test_generated_network_converges_over_chaotic_sockets(seed):
    spec = generate_spec(seed)
    report = DifferentialOracle(_chaos_plan(fault_seed=seed)).check(spec)
    assert report.baseline_error is None, report.describe()
    assert report.ok, (
        f"seed {seed} diverged under socket chaos:\n{report.describe()}"
    )


@pytest.mark.parametrize(
    "case",
    EQUIVALENT_CASES[:2],
    ids=[case.name for case in EQUIVALENT_CASES[:2]],
)
def test_corpus_case_converges_over_chaotic_sockets(case):
    spec = case.resolve_spec()
    report = DifferentialOracle(_chaos_plan(fault_seed=1)).check(spec)
    assert report.baseline_error is None, report.describe()
    assert report.ok, f"{case.name} diverged:\n{report.describe()}"
