"""Tests for the OSPF model and its interaction with BGP redistribution."""

import pytest

from repro.config.loader import make_snapshot, parse_device
from repro.net.ip import Prefix, format_ip
from repro.routing.engine import SimulationEngine
from repro.routing.route import Protocol


def ospf_device(hostname, ifaces, costs=None, loopback=None, passive=()):
    """ifaces = [(name, ip, masklen)]; costs maps iface->cost."""
    costs = costs or {}
    lines = [f"hostname {hostname}"]
    for name, ip, length in ifaces:
        mask = format_ip(Prefix(Prefix.parse(ip).network, length).mask)
        lines += [f"interface {name}", f" ip address {ip} {mask}"]
        if name in costs:
            lines.append(f" ip ospf cost {costs[name]}")
    if loopback:
        mask = format_ip(Prefix.parse(loopback).mask)
        lines += [
            "interface lo0",
            f" ip address {loopback.split('/')[0]} "
            f"{format_ip(Prefix.parse(loopback).mask)}",
        ]
    lines.append("router ospf 1")
    lines.append(f" router-id {format_ip(abs(hash(hostname)) % 1000 + 1)}")
    lines.append(" network 0.0.0.0 255.255.255.255 area 0")
    for iface in passive:
        lines.append(f" passive-interface {iface}")
    return "\n".join(lines) + "\n"


def build(*texts):
    configs = {}
    for text in texts:
        config = parse_device(text, "ciscoish")
        configs[config.hostname] = config
    return make_snapshot(configs)


class TestChain:
    """a --1-- b --1-- c line; a has a loopback."""

    @pytest.fixture(scope="class")
    def engine(self):
        snap = build(
            ospf_device(
                "a", [("eth0", "10.0.0.0", 31)], loopback="172.16.0.1/32"
            ),
            ospf_device(
                "b", [("eth0", "10.0.0.1", 31), ("eth1", "10.0.0.2", 31)]
            ),
            ospf_device("c", [("eth0", "10.0.0.3", 31)]),
        )
        engine = SimulationEngine(snap)
        engine.run_ospf()
        return engine

    def test_remote_prefix_learned(self, engine):
        routes = engine.ospf["c"].routes()
        loop = [r for r in routes if r.prefix == Prefix.parse("172.16.0.1/32")]
        assert len(loop) == 1
        assert loop[0].metric == 2  # two hops at cost 1

    def test_next_hop_points_to_neighbor(self, engine):
        routes = engine.ospf["c"].routes()
        loop = [r for r in routes if r.prefix == Prefix.parse("172.16.0.1/32")]
        assert loop[0].next_hop == Prefix.parse("10.0.0.2").network

    def test_adjacent_subnet_cost_one(self, engine):
        routes = engine.ospf["c"].routes()
        far_link = [
            r for r in routes if r.prefix == Prefix.parse("10.0.0.0/31")
        ]
        assert far_link and far_link[0].metric == 1

    def test_routes_installed_into_main_rib(self, engine):
        node = engine.nodes["c"]
        assert node.main_rib.routes_for(Prefix.parse("172.16.0.1/32"))

    def test_protocol_and_admin_distance(self, engine):
        routes = engine.ospf["c"].routes()
        assert all(r.protocol is Protocol.OSPF for r in routes)
        assert all(r.admin_distance == 110 for r in routes)


class TestCostsAndEcmp:
    def test_interface_cost_respected(self):
        # diamond: a-b (cost 1), a-c (cost 10), b-d, c-d; a reaches d's
        # loopback via b
        snap = build(
            ospf_device(
                "a",
                [("eth0", "10.0.0.0", 31), ("eth1", "10.0.0.2", 31)],
                costs={"eth1": 10},
            ),
            ospf_device(
                "b", [("eth0", "10.0.0.1", 31), ("eth1", "10.0.0.4", 31)]
            ),
            ospf_device(
                "c", [("eth0", "10.0.0.3", 31), ("eth1", "10.0.0.6", 31)]
            ),
            ospf_device(
                "d",
                [("eth0", "10.0.0.5", 31), ("eth1", "10.0.0.7", 31)],
                loopback="172.16.0.9/32",
            ),
        )
        engine = SimulationEngine(snap)
        engine.run_ospf()
        routes = [
            r
            for r in engine.ospf["a"].routes()
            if r.prefix == Prefix.parse("172.16.0.9/32")
        ]
        assert len(routes) == 1
        assert routes[0].next_hop == Prefix.parse("10.0.0.1").network
        assert routes[0].metric == 2

    def test_equal_cost_multipath(self):
        # same diamond, equal costs: a sees two next hops to d's loopback
        snap = build(
            ospf_device(
                "a", [("eth0", "10.0.0.0", 31), ("eth1", "10.0.0.2", 31)]
            ),
            ospf_device(
                "b", [("eth0", "10.0.0.1", 31), ("eth1", "10.0.0.4", 31)]
            ),
            ospf_device(
                "c", [("eth0", "10.0.0.3", 31), ("eth1", "10.0.0.6", 31)]
            ),
            ospf_device(
                "d",
                [("eth0", "10.0.0.5", 31), ("eth1", "10.0.0.7", 31)],
                loopback="172.16.0.9/32",
            ),
        )
        engine = SimulationEngine(snap)
        engine.run_ospf()
        routes = [
            r
            for r in engine.ospf["a"].routes()
            if r.prefix == Prefix.parse("172.16.0.9/32")
        ]
        assert len(routes) == 2
        assert {r.next_hop for r in routes} == {
            Prefix.parse("10.0.0.1").network,
            Prefix.parse("10.0.0.3").network,
        }

    def test_passive_interface_forms_no_adjacency(self):
        snap = build(
            ospf_device(
                "a",
                [("eth0", "10.0.0.0", 31)],
                loopback="172.16.0.1/32",
                passive=("eth0",),
            ),
            ospf_device("b", [("eth0", "10.0.0.1", 31)]),
        )
        engine = SimulationEngine(snap)
        engine.run_ospf()
        assert engine.ospf["a"].adjacencies == []
        routes = engine.ospf["b"].routes()
        assert all(r.prefix != Prefix.parse("172.16.0.1/32") for r in routes)


class TestNonOspfNodes:
    def test_disabled_process_is_inert(self, fattree4):
        engine = SimulationEngine(fattree4)
        engine.run_ospf()  # no OSPF configured anywhere: no-op
        assert engine.stats.ospf_rounds == 0
        assert all(not p.enabled for p in engine.ospf.values())
