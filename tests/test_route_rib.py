"""Tests for route types, the BGP decision process, and the RIBs."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import Prefix
from repro.routing.rib import BgpRib, MainRib
from repro.routing.route import (
    BgpRoute,
    Origin,
    Protocol,
    Route,
    decision_key,
    ecmp_key,
)

P = Prefix.parse("10.0.0.0/24")


def route(**overrides) -> BgpRoute:
    base = dict(
        prefix=P,
        next_hop=1,
        from_node="n1",
        as_path=(100,),
        local_pref=100,
        med=0,
        origin=Origin.IGP,
        weight=0,
        ebgp=True,
        originator_id=1,
        igp_cost=0,
    )
    base.update(overrides)
    return BgpRoute(**base)


class TestDecisionProcess:
    def test_higher_weight_wins(self):
        assert decision_key(route(weight=10)) < decision_key(route(weight=0))

    def test_higher_local_pref_wins(self):
        assert decision_key(route(local_pref=200)) < decision_key(
            route(local_pref=100)
        )

    def test_shorter_as_path_wins(self):
        assert decision_key(route(as_path=(1,))) < decision_key(
            route(as_path=(1, 2))
        )

    def test_lower_origin_wins(self):
        assert decision_key(route(origin=Origin.IGP)) < decision_key(
            route(origin=Origin.INCOMPLETE)
        )

    def test_lower_med_wins(self):
        assert decision_key(route(med=5)) < decision_key(route(med=50))

    def test_ebgp_beats_ibgp(self):
        assert decision_key(route(ebgp=True)) < decision_key(
            route(ebgp=False)
        )

    def test_lower_igp_cost_wins(self):
        assert decision_key(route(igp_cost=1)) < decision_key(
            route(igp_cost=9)
        )

    def test_router_id_breaks_ties(self):
        assert decision_key(route(originator_id=1)) < decision_key(
            route(originator_id=2)
        )

    def test_attribute_precedence(self):
        # local-pref dominates AS-path length
        long_but_preferred = route(local_pref=200, as_path=(1, 2, 3, 4))
        short = route(local_pref=100, as_path=(1,))
        assert decision_key(long_but_preferred) < decision_key(short)
        # AS-path length dominates MED
        assert decision_key(route(as_path=(1,), med=99)) < decision_key(
            route(as_path=(1, 2), med=0)
        )

    def test_ecmp_key_ignores_final_tiebreaks(self):
        a = route(originator_id=1, from_node="a")
        b = route(originator_id=2, from_node="b")
        assert ecmp_key(a) == ecmp_key(b)
        assert decision_key(a) != decision_key(b)

    @given(
        st.lists(
            st.builds(
                route,
                local_pref=st.integers(0, 300),
                med=st.integers(0, 100),
                as_path=st.lists(
                    st.integers(1, 70000), max_size=4
                ).map(tuple),
                originator_id=st.integers(1, 50),
                ebgp=st.booleans(),
                weight=st.integers(0, 10),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_best_is_minimal_under_key(self, routes):
        best = min(routes, key=decision_key)
        assert all(decision_key(best) <= decision_key(r) for r in routes)


class TestRouteHelpers:
    def test_with_prepend(self):
        assert route(as_path=(2,)).with_prepend((1,)).as_path == (1, 2)

    def test_has_as(self):
        assert route(as_path=(5, 6)).has_as(5)
        assert not route(as_path=(5, 6)).has_as(7)

    def test_protocol_property(self):
        assert route(ebgp=True).protocol is Protocol.BGP
        assert route(ebgp=False).protocol is Protocol.IBGP
        assert route(aggregate=True).protocol is Protocol.AGGREGATE

    def test_describe(self):
        text = route().describe()
        assert "10.0.0.0/24" in text and "100" in text

    def test_admin_distances_ordered(self):
        assert (
            Protocol.CONNECTED.admin_distance
            < Protocol.STATIC.admin_distance
            < Protocol.BGP.admin_distance
            < Protocol.OSPF.admin_distance
            < Protocol.IBGP.admin_distance
        )


class TestBgpRib:
    def test_put_and_best(self):
        rib = BgpRib(max_paths=4)
        rib.put(route(from_node="a", originator_id=2))
        rib.put(route(from_node="b", originator_id=1))
        best = rib.best(P)
        assert len(best) == 2  # ECMP: equal on everything but router-id

    def test_max_paths_caps_ecmp(self):
        rib = BgpRib(max_paths=2)
        for i in range(5):
            rib.put(route(from_node=f"n{i}", originator_id=i))
        assert len(rib.best(P)) == 2

    def test_best_ordering_is_deterministic(self):
        rib = BgpRib(max_paths=3)
        for i in (3, 1, 2):
            rib.put(route(from_node=f"n{i}", originator_id=i))
        assert [r.originator_id for r in rib.best(P)] == [1, 2, 3]

    def test_put_idempotent(self):
        rib = BgpRib()
        assert rib.put(route(from_node="a"))
        assert not rib.put(route(from_node="a"))

    def test_put_replaces_same_source(self):
        rib = BgpRib()
        rib.put(route(from_node="a", local_pref=100))
        assert rib.put(route(from_node="a", local_pref=200))
        assert rib.best(P)[0].local_pref == 200
        assert len(rib.candidates_for(P)) == 1

    def test_withdraw(self):
        rib = BgpRib()
        rib.put(route(from_node="a"))
        assert rib.withdraw(P, "a")
        assert rib.best(P) == ()
        assert not rib.withdraw(P, "a")

    def test_replace_neighbor_routes_withdraws_stale(self):
        rib = BgpRib()
        other = Prefix.parse("10.9.0.0/24")
        rib.replace_neighbor_routes(
            "a", [route(from_node="a"), route(from_node="a", prefix=other)]
        )
        assert rib.best(other)
        # neighbor stops exporting `other`
        changed = rib.replace_neighbor_routes("a", [route(from_node="a")])
        assert changed
        assert rib.best(other) == ()
        assert rib.best(P)

    def test_replace_neighbor_routes_no_change(self):
        rib = BgpRib()
        rib.replace_neighbor_routes("a", [route(from_node="a")])
        assert not rib.replace_neighbor_routes("a", [route(from_node="a")])

    def test_replace_does_not_disturb_other_neighbors(self):
        rib = BgpRib(max_paths=4)
        rib.replace_neighbor_routes("a", [route(from_node="a", originator_id=1)])
        rib.replace_neighbor_routes("b", [route(from_node="b", originator_id=2)])
        rib.replace_neighbor_routes("a", [])
        assert [r.from_node for r in rib.best(P)] == ["b"]

    def test_fingerprint_changes_on_best_change(self):
        rib = BgpRib()
        before = rib.fingerprint()
        rib.put(route(from_node="a"))
        assert rib.fingerprint() != before

    def test_fingerprint_order_independent(self):
        a = BgpRib(max_paths=4)
        b = BgpRib(max_paths=4)
        r1, r2 = route(from_node="x", originator_id=1), route(
            from_node="y", originator_id=2
        )
        a.put(r1), a.put(r2)
        b.put(r2), b.put(r1)
        assert a.fingerprint() == b.fingerprint()

    def test_len_counts_candidates(self):
        rib = BgpRib()
        rib.put(route(from_node="a"))
        rib.put(route(from_node="b"))
        rib.put(route(from_node="a", prefix=Prefix.parse("10.9.0.0/24")))
        assert len(rib) == 3

    def test_clear(self):
        rib = BgpRib()
        rib.put(route(from_node="a"))
        rib.clear()
        assert len(rib) == 0 and rib.best(P) == ()


class TestMainRib:
    def test_lower_admin_distance_wins(self):
        rib = MainRib()
        rib.add(Route(prefix=P, protocol=Protocol.OSPF, admin_distance=110))
        rib.add(Route(prefix=P, protocol=Protocol.STATIC, admin_distance=1))
        routes = rib.routes_for(P)
        assert len(routes) == 1 and routes[0].protocol is Protocol.STATIC

    def test_higher_admin_distance_ignored(self):
        rib = MainRib()
        rib.add(Route(prefix=P, protocol=Protocol.STATIC, admin_distance=1))
        rib.add(Route(prefix=P, protocol=Protocol.OSPF, admin_distance=110))
        assert rib.routes_for(P)[0].protocol is Protocol.STATIC

    def test_equal_distance_accumulates_ecmp(self):
        rib = MainRib()
        rib.add(
            Route(prefix=P, protocol=Protocol.OSPF, next_hop=1, admin_distance=110)
        )
        rib.add(
            Route(prefix=P, protocol=Protocol.OSPF, next_hop=2, admin_distance=110)
        )
        assert len(rib.routes_for(P)) == 2

    def test_duplicate_route_not_added(self):
        rib = MainRib()
        r = Route(prefix=P, protocol=Protocol.STATIC, admin_distance=1)
        rib.add(r)
        rib.add(r)
        assert len(rib.routes_for(P)) == 1

    def test_prefixes_iterates_both_tables(self):
        rib = MainRib()
        rib.add(Route(prefix=P, protocol=Protocol.CONNECTED))
        other = Prefix.parse("10.2.0.0/24")
        rib.set_bgp(other, (route(prefix=other),))
        assert set(rib.prefixes()) == {P, other}

    def test_set_bgp_empty_removes(self):
        rib = MainRib()
        rib.set_bgp(P, (route(),))
        rib.set_bgp(P, ())
        assert rib.bgp_for(P) == ()

    def test_route_count(self):
        rib = MainRib()
        rib.add(Route(prefix=P, protocol=Protocol.CONNECTED))
        rib.set_bgp(
            Prefix.parse("10.2.0.0/24"),
            (route(), route(from_node="z", originator_id=9)),
        )
        assert rib.route_count() == 3
