"""Tests for the engine's bounded op-cache, GC/compaction, and roots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.engine import FALSE, TRUE, BddEngine

from tests.test_bdd import N_VARS, build, evaluate, formula


@pytest.fixture
def engine():
    return BddEngine(N_VARS)


def all_assignments(num_vars):
    for bits in range(1 << num_vars):
        yield {v: bool((bits >> v) & 1) for v in range(num_vars)}


class TestRootRegistry:
    def test_add_root_returns_id(self, engine):
        u = engine.var(3)
        assert engine.add_root(u) == u
        assert engine.root_count == 1

    def test_terminals_not_registered(self, engine):
        engine.add_root(TRUE)
        engine.add_root(FALSE)
        assert engine.root_count == 0

    def test_refcounted(self, engine):
        u = engine.var(0)
        engine.add_root(u)
        engine.add_root(u)
        engine.remove_root(u)
        assert engine.root_count == 1
        engine.remove_root(u)
        assert engine.root_count == 0

    def test_remove_unregistered_is_noop(self, engine):
        engine.remove_root(engine.var(5))
        assert engine.root_count == 0


class TestCollectGarbage:
    def test_node_count_shrinks_after_releasing_roots(self, engine):
        """The satellite acceptance case: dropping a root frees its nodes."""
        keep = engine.add_root(engine.and_(engine.var(0), engine.var(1)))
        junk = engine.add_root(
            engine.xor(engine.or_(engine.var(2), engine.var(3)), engine.var(4))
        )
        grown = engine.node_count
        engine.remove_root(junk)
        remap = engine.collect_garbage()
        assert engine.node_count < grown
        # terminals + the two internal nodes of var0 & var1
        assert engine.node_count == 2 + engine.size_of(remap[keep])
        assert engine.gc_runs == 1
        assert engine.gc_reclaimed_nodes == grown - engine.node_count

    def test_unrooted_engine_collects_to_terminals(self, engine):
        build(engine, ("xor", ("var", 0), ("and", ("var", 1), ("nvar", 2))))
        engine.collect_garbage()
        assert engine.node_count == 2

    def test_extra_roots_survive(self, engine):
        u = engine.or_(engine.var(0), engine.var(7))
        remap = engine.collect_garbage(extra_roots=[u])
        assert remap[u] in remap.values()
        assert engine.node_count == 2 + engine.size_of(remap[u])

    def test_registry_remapped_in_place(self, engine):
        engine.var(9)  # junk allocated before the root
        root = engine.add_root(engine.and_(engine.var(1), engine.var(2)))
        remap = engine.collect_garbage()
        assert set(engine._roots) == {remap[root]}
        # A further GC keeps the (remapped) root alive: terminals plus
        # the two internal nodes of x1 ∧ x2.
        engine.collect_garbage()
        assert engine.node_count == 4

    def test_ops_counter_not_reset(self, engine):
        engine.and_(engine.var(0), engine.var(1))
        ops = engine.ops
        engine.collect_garbage()
        assert engine.ops == ops

    @settings(max_examples=25, deadline=None)
    @given(tree=formula)
    def test_remap_preserves_semantics(self, tree):
        """Compaction renames ids but the function must be untouched."""
        engine = BddEngine(N_VARS)
        u = build(engine, tree)
        expected = [
            evaluate(engine, u, a) for a in all_assignments(N_VARS)
        ]
        engine.add_root(u)
        remap = engine.collect_garbage()
        v = remap[u]
        actual = [evaluate(engine, v, a) for a in all_assignments(N_VARS)]
        assert actual == expected

    def test_operations_correct_after_compaction(self, engine):
        a = engine.add_root(engine.or_(engine.var(0), engine.var(1)))
        b = engine.add_root(engine.and_(engine.var(1), engine.var(2)))
        remap = engine.collect_garbage()
        a2, b2 = remap[a], remap[b]
        # the flushed caches and rebuilt unique table must still canonize
        assert engine.and_(a2, b2) == engine.and_(b2, a2)
        assert engine.or_(a2, engine.not_(a2)) == TRUE
        assert engine.diff(b2, a2) == FALSE  # b implies a

    def test_peak_node_count_tracks_high_water(self, engine):
        build(engine, ("xor", ("var", 0), ("xor", ("var", 1), ("var", 2))))
        grown = engine.node_count
        engine.collect_garbage()
        assert engine.node_count == 2
        assert engine.counters()["peak_node_count"] >= grown

    def test_flat_across_repeated_query_cycles(self):
        """The DPO usage pattern: permanent predicate roots, transient
        query work, GC at each boundary -> node count returns to baseline
        instead of growing monotonically."""
        engine = BddEngine(16)
        predicates = [
            engine.add_root(engine.and_(engine.var(i), engine.nvar(i + 1)))
            for i in range(0, 8, 2)
        ]
        baseline = engine.node_count
        counts = []
        for round_ in range(6):
            acc = FALSE
            for p in predicates:
                acc = engine.or_(acc, engine.and_(p, engine.var(8 + round_)))
            engine.collect_garbage()
            counts.append(engine.node_count)
        # Flat: every between-query GC lands on the same footprint (the
        # rooted predicates), never above the pre-query baseline.
        assert len(set(counts)) == 1
        assert counts[0] <= baseline


class TestBoundedCache:
    def test_cache_entries_bounded(self):
        engine = BddEngine(24, cache_limit=64)
        for i in range(0, 22):
            a = engine.xor(engine.var(i), engine.var((i + 3) % 22))
            b = engine.or_(engine.var((i + 7) % 22), a)
            engine.and_(a, engine.not_(b))
        counters = engine.counters()
        assert counters["cache_entries"] <= 2 * 64
        assert counters["cache_generation"] >= 1

    def test_eviction_preserves_semantics(self):
        bounded = BddEngine(10, cache_limit=8)
        roomy = BddEngine(10)
        tree = (
            "xor",
            ("or", ("var", 0), ("and", ("var", 1), ("var", 2))),
            ("and", ("nvar", 3), ("or", ("var", 4), ("nvar", 5))),
        )
        a, b = build(bounded, tree), build(roomy, tree)
        for assignment in all_assignments(6):
            full = dict(assignment)
            full.update({v: False for v in range(6, 10)})
            assert evaluate(bounded, a, full) == evaluate(roomy, b, full)

    def test_hit_and_miss_counters(self, engine):
        a = engine.or_(engine.var(0), engine.var(1))
        b = engine.and_(engine.var(2), engine.var(3))
        misses = engine.cache_misses
        engine.and_(a, b)
        assert engine.cache_misses > misses
        hits = engine.cache_hits
        engine.and_(b, a)  # commutative key canonicalization -> same entry
        assert engine.cache_hits > hits

    def test_hit_rate_in_counters(self, engine):
        engine.and_(engine.var(0), engine.var(1))
        counters = engine.counters()
        assert 0.0 <= counters["cache_hit_rate"] <= 1.0


class TestIte:
    @settings(max_examples=60, deadline=None)
    @given(tf=formula, tg=formula, th=formula)
    def test_ite_matches_definition(self, tf, tg, th):
        engine = BddEngine(N_VARS)
        f, g, h = build(engine, tf), build(engine, tg), build(engine, th)
        direct = engine.ite(f, g, h)
        expanded = engine.or_(
            engine.and_(f, g), engine.and_(engine.not_(f), h)
        )
        assert direct == expanded

    def test_ite_normalizations(self, engine):
        f = engine.var(0)
        g = engine.var(1)
        assert engine.ite(TRUE, f, g) == f
        assert engine.ite(FALSE, f, g) == g
        assert engine.ite(f, g, g) == g
        assert engine.ite(f, TRUE, FALSE) == f
        assert engine.ite(f, FALSE, TRUE) == engine.not_(f)
        assert engine.ite(f, f, g) == engine.or_(f, g)
        assert engine.ite(f, g, f) == engine.and_(f, g)
