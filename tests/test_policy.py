"""Tests for route-map evaluation and VSB transformations."""

import pytest

from repro.config import parse_cisco
from repro.config.ast import RemovePrivateAsMode
from repro.config.policy import (
    PolicyEngine,
    PolicyError,
    apply_remove_private_as,
    as_path_regex_matches,
)
from repro.net.ip import Prefix
from repro.routing.route import BgpRoute, Origin

BASE = BgpRoute(
    prefix=Prefix.parse("10.1.0.0/24"),
    next_hop=1,
    from_node="peer",
    as_path=(65002, 65003),
    communities=frozenset(),
)


def engine_from(config_text: str) -> PolicyEngine:
    return PolicyEngine(parse_cisco("hostname t\n" + config_text))


class TestMatches:
    def test_prefix_list_match_permits(self):
        engine = engine_from(
            "ip prefix-list PL seq 5 permit 10.0.0.0/8 le 24\n"
            "route-map RM permit 10\n"
            " match ip address prefix-list PL\n"
            " set local-preference 300\n"
        )
        out = engine.run("RM", BASE, own_asn=65001)
        assert out is not None and out.local_pref == 300

    def test_prefix_list_no_match_falls_to_implicit_deny(self):
        engine = engine_from(
            "ip prefix-list PL seq 5 permit 172.16.0.0/12 le 24\n"
            "route-map RM permit 10\n"
            " match ip address prefix-list PL\n"
        )
        assert engine.run("RM", BASE, own_asn=65001) is None

    def test_community_list_match(self):
        engine = engine_from(
            "ip community-list standard CL permit 65000:1\n"
            "route-map RM permit 10\n"
            " match community CL\n"
        )
        tagged = BASE.__class__(**{**BASE.__dict__, "communities": frozenset([(65000 << 16) | 1])})
        assert engine.run("RM", tagged, 65001) is not None
        assert engine.run("RM", BASE, 65001) is None

    def test_as_path_list_match(self):
        engine = engine_from(
            "ip as-path access-list AP permit _65003$\n"
            "route-map RM permit 10\n"
            " match as-path AP\n"
        )
        assert engine.run("RM", BASE, 65001) is not None

    def test_conjunctive_matches(self):
        engine = engine_from(
            "ip prefix-list PL seq 5 permit 10.0.0.0/8 le 24\n"
            "ip community-list standard CL permit 65000:1\n"
            "route-map RM permit 10\n"
            " match ip address prefix-list PL\n"
            " match community CL\n"
            "route-map RM permit 20\n"
        )
        # first clause fails on community; second (empty-match) permits
        out = engine.run("RM", BASE, 65001)
        assert out == BASE

    def test_clause_order_by_seq(self):
        engine = engine_from(
            "route-map RM permit 20\n"
            " set local-preference 20\n"
            "route-map RM permit 10\n"
            " set local-preference 10\n"
        )
        out = engine.run("RM", BASE, 65001)
        assert out.local_pref == 10

    def test_deny_clause_drops(self):
        engine = engine_from(
            "ip prefix-list PL seq 5 permit 10.1.0.0/24\n"
            "route-map RM deny 10\n"
            " match ip address prefix-list PL\n"
            "route-map RM permit 20\n"
        )
        assert engine.run("RM", BASE, 65001) is None

    def test_missing_map_name_denies(self):
        engine = engine_from("")
        assert engine.run("GHOST", BASE, 65001) is None

    def test_none_map_permits_unchanged(self):
        engine = engine_from("")
        assert engine.run(None, BASE, 65001) == BASE

    def test_missing_prefix_list_raises(self):
        engine = engine_from(
            "route-map RM permit 10\n match ip address prefix-list NOPE\n"
        )
        with pytest.raises(PolicyError):
            engine.run("RM", BASE, 65001)


class TestSets:
    def test_set_med_and_weight(self):
        engine = engine_from(
            "route-map RM permit 10\n set metric 55\n set weight 9\n"
        )
        out = engine.run("RM", BASE, 65001)
        assert out.med == 55 and out.weight == 9

    def test_set_origin(self):
        engine = engine_from("route-map RM permit 10\n set origin incomplete\n")
        assert engine.run("RM", BASE, 65001).origin is Origin.INCOMPLETE

    def test_set_community_replaces(self):
        engine = engine_from("route-map RM permit 10\n set community 65000:9\n")
        out = engine.run("RM", BASE, 65001)
        assert out.communities == frozenset([(65000 << 16) | 9])

    def test_set_community_additive(self):
        engine = engine_from(
            "route-map RM permit 10\n set community 65000:9 additive\n"
        )
        start = BgpRoute(
            **{**BASE.__dict__, "communities": frozenset([(65000 << 16) | 1])}
        )
        out = engine.run("RM", start, 65001)
        assert out.communities == frozenset(
            [(65000 << 16) | 1, (65000 << 16) | 9]
        )

    def test_comm_list_delete(self):
        engine = engine_from(
            "ip community-list standard CL permit 65000:1\n"
            "route-map RM permit 10\n set comm-list CL delete\n"
        )
        start = BgpRoute(
            **{
                **BASE.__dict__,
                "communities": frozenset(
                    [(65000 << 16) | 1, (65000 << 16) | 2]
                ),
            }
        )
        out = engine.run("RM", start, 65001)
        assert out.communities == frozenset([(65000 << 16) | 2])

    def test_as_path_prepend(self):
        engine = engine_from(
            "route-map RM permit 10\n set as-path prepend 65001 65001\n"
        )
        out = engine.run("RM", BASE, 65001)
        assert out.as_path == (65001, 65001, 65002, 65003)

    def test_as_path_overwrite_uses_own_asn(self):
        engine = engine_from(
            "route-map RM permit 10\n set as-path replace any\n"
        )
        out = engine.run("RM", BASE, own_asn=64700)
        assert out.as_path == (64700,)

    def test_set_next_hop(self):
        engine = engine_from(
            "route-map RM permit 10\n set ip next-hop 9.9.9.9\n"
        )
        out = engine.run("RM", BASE, 65001)
        assert out.next_hop == Prefix.parse("9.9.9.9").network


class TestAsPathRegex:
    @pytest.mark.parametrize(
        "pattern,path,expected",
        [
            ("^65002_", (65002, 65003), True),
            ("^65003_", (65002, 65003), False),
            ("_65003$", (65002, 65003), True),
            ("_65002_", (65002, 65003), True),
            ("_6500_", (65002, 65003), False),  # no partial-number match
            ("^$", (), True),
            ("^$", (65002,), False),
            (".*", (1, 2, 3), True),
        ],
    )
    def test_patterns(self, pattern, path, expected):
        assert as_path_regex_matches(pattern, path) == expected

    def test_bad_regex_raises(self):
        with pytest.raises(PolicyError):
            as_path_regex_matches("(((", (1,))


class TestRemovePrivateAs:
    def test_all_mode_strips_every_private(self):
        path = (64512, 3000, 65534, 4200)
        out = apply_remove_private_as(path, RemovePrivateAsMode.ALL)
        assert out == (3000, 4200)

    def test_leading_mode_strips_only_prefix(self):
        path = (64512, 3000, 65534, 4200)
        out = apply_remove_private_as(path, RemovePrivateAsMode.LEADING)
        assert out == (3000, 65534, 4200)

    def test_modes_agree_on_all_private(self):
        path = (64512, 64513)
        assert apply_remove_private_as(path, RemovePrivateAsMode.ALL) == ()
        assert apply_remove_private_as(path, RemovePrivateAsMode.LEADING) == ()

    def test_modes_agree_on_no_private(self):
        path = (3000, 4200)
        for mode in RemovePrivateAsMode:
            assert apply_remove_private_as(path, mode) == path

    def test_vsb_divergence_is_observable(self):
        """The §2.1 motivating example: the two vendors produce different
        paths for private-after-public mixes."""
        path = (3000, 64601)
        assert apply_remove_private_as(
            path, RemovePrivateAsMode.ALL
        ) != apply_remove_private_as(path, RemovePrivateAsMode.LEADING)
