"""Replay every stored fuzz case against the differential oracle.

``tests/corpus/`` is the fuzzer's long-term memory: shrunken oscillation
gadgets that must stay *detected* (``expect: divergent``) and
feature-dense generated networks that must stay *equivalent* across
every engine.  A case failing here means either an engine regression or
an oracle that went blind.
"""

import pytest

from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, load_corpus
from repro.fuzz.oracle import CheckPlan, DifferentialOracle

CASES = load_corpus(DEFAULT_CORPUS_DIR)


def test_corpus_is_populated():
    assert len(CASES) >= 5
    assert any(case.expect == "divergent" for case in CASES)
    assert any(case.expect == "equivalent" for case in CASES)


def test_corpus_names_match_files():
    for case in CASES:
        assert case.path is not None
        assert case.path.endswith(f"{case.name}.json")
        assert case.description  # every stored case explains itself


@pytest.mark.parametrize(
    "case", CASES, ids=[case.name for case in CASES]
)
def test_replay(case):
    spec = case.resolve_spec()
    report = DifferentialOracle(CheckPlan.quick()).check(spec)
    assert report.baseline_error is None, report.describe()
    if case.expect == "equivalent":
        assert report.ok, f"{case.name} regressed:\n{report.describe()}"
    else:
        assert not report.ok, (
            f"{case.name} is a known-divergent gadget the oracle must "
            "flag, but every engine now agrees — if an engine change "
            "legitimately fixed it, promote the case to expect: "
            "equivalent with a note"
        )
