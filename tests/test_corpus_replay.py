"""Replay every stored fuzz case against the differential oracle.

``tests/corpus/`` is the fuzzer's long-term memory: shrunken oscillation
gadgets that must stay *detected* (``expect: divergent``) and
feature-dense generated networks that must stay *equivalent* across
every engine.  A case failing here means either an engine regression or
an oracle that went blind.
"""

import pytest

from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, load_corpus
from repro.fuzz.oracle import (
    CheckPlan,
    DifferentialOracle,
    adjudicate_groundtruth,
)

CASES = load_corpus(DEFAULT_CORPUS_DIR)
DIVERGENT = [case for case in CASES if case.expect == "divergent"]


def test_corpus_is_populated():
    assert len(CASES) >= 5
    assert any(case.expect == "divergent" for case in CASES)
    assert any(case.expect == "equivalent" for case in CASES)


def test_corpus_names_match_files():
    for case in CASES:
        assert case.path is not None
        assert case.path.endswith(f"{case.name}.json")
        assert case.description  # every stored case explains itself


@pytest.mark.parametrize(
    "case", CASES, ids=[case.name for case in CASES]
)
def test_replay(case):
    spec = case.resolve_spec()
    # include_groundtruth: the concrete packet-walk adjudicator runs as
    # a third check on every equivalent case (it only fires when the
    # RIB diff is clean, so divergent gadgets skip it naturally).
    plan = CheckPlan.quick()
    plan.include_groundtruth = True
    report = DifferentialOracle(plan).check(spec)
    assert report.baseline_error is None, report.describe()
    if case.expect == "equivalent":
        assert report.ok, f"{case.name} regressed:\n{report.describe()}"
        assert "groundtruth" in report.variants_run
    else:
        assert not report.ok, (
            f"{case.name} is a known-divergent gadget the oracle must "
            "flag, but every engine now agrees — if an engine change "
            "legitimately fixed it, promote the case to expect: "
            "equivalent with a note"
        )


def test_every_divergent_gadget_is_adjudicated():
    """Each expect-divergent gadget carries a recorded ground-truth
    verdict saying which runtime the concrete packet walk sides with."""
    assert DIVERGENT
    for case in DIVERGENT:
        verdict = case.metadata.get("groundtruth")
        assert verdict is not None, (
            f"{case.name} has no recorded ground-truth adjudication — "
            "run repro.fuzz.oracle.adjudicate_groundtruth and save it "
            "in the case metadata"
        )
        assert verdict["sides_with"] in (
            "monolithic", "divergent", "both", "neither"
        )
        assert verdict["divergent_variant"], (
            "an expect-divergent case must name the variant that "
            "diverged from the monolithic baseline"
        )


@pytest.mark.parametrize(
    "case", DIVERGENT, ids=[case.name for case in DIVERGENT]
)
def test_gadget_adjudication_is_reproducible(case):
    """Recompute the concrete-walk adjudication and check it still
    matches the verdict pinned in the corpus metadata."""
    recorded = case.metadata["groundtruth"]
    fresh = adjudicate_groundtruth(case.resolve_spec(), CheckPlan.quick())
    assert fresh["sides_with"] == recorded["sides_with"], (
        f"{case.name}: the concrete walk now sides with "
        f"{fresh['sides_with']!r} but the corpus records "
        f"{recorded['sides_with']!r} — re-run the adjudicator and "
        "update the stored metadata if an engine change is responsible"
    )
    assert fresh["divergent_variant"] == recorded["divergent_variant"]
    assert fresh["monolithic"]["ok"] == recorded["monolithic"]["ok"]
