"""Tests for the high-level S2Verifier facade and VerificationResult."""

import pytest

from repro import Prefix, Query, S2Options, S2Verifier, verify_snapshot
from repro.dist.resources import CostModel


class TestVerify:
    def test_default_all_pair(self, fattree4):
        result = verify_snapshot(
            fattree4, S2Options(num_workers=2, num_shards=2)
        )
        assert result.ok
        assert result.status == "ok"
        assert result.reachable_pairs == 64
        assert result.checked_pairs == 64
        assert result.total_routes == 256
        assert result.wall_seconds > 0
        assert result.modeled_time > 0
        assert result.peak_worker_bytes > 0

    def test_summary_mentions_key_facts(self, fattree4):
        result = verify_snapshot(fattree4, S2Options(num_workers=2))
        text = result.summary()
        assert "OK" in text and "64/64" in text and "256 routes" in text

    def test_custom_query(self, fattree4):
        result = verify_snapshot(
            fattree4,
            S2Options(num_workers=2),
            query=Query.single_pair(
                "edge-0-0", "edge-1-0", Prefix.parse("10.1.0.0/24")
            ),
        )
        assert result.ok
        assert result.reachable_pairs == 1
        assert result.checked_pairs == 1

    def test_check_loops_flag(self, fattree4):
        result = verify_snapshot(
            fattree4, S2Options(num_workers=2), check_loops=True
        )
        assert result.ok
        assert result.loop_violations == []

    def test_oom_reported_not_raised(self, fattree4):
        result = verify_snapshot(
            fattree4, S2Options(num_workers=2, worker_capacity=1)
        )
        assert result.status == "oom"
        assert not result.ok
        assert "out of memory" in result.error
        assert "OOM" in result.summary()
        assert result.report is not None and result.report.any_oom

    def test_bdd_overflow_reported(self, fattree4):
        result = verify_snapshot(
            fattree4,
            S2Options(num_workers=2, node_limit=64, worker_capacity=1 << 62),
        )
        assert result.status == "bdd-overflow"

    def test_stats_attached(self, fattree4):
        result = verify_snapshot(
            fattree4, S2Options(num_workers=2, num_shards=3)
        )
        assert result.cp_stats.shards_run == 3
        assert result.cp_stats.bgp_rounds > 0
        assert result.dp_stats.supersteps > 0
        assert result.num_workers == 2
        assert result.num_shards == 3

    def test_context_manager_cleanup(self, fattree4):
        with S2Verifier(fattree4, S2Options(num_workers=2)) as verifier:
            directory = verifier.controller.store.directory
            verifier.run_control_plane()
        import os

        assert not os.path.isdir(directory)

    def test_piecewise_api(self, fattree4):
        with S2Verifier(fattree4, S2Options(num_workers=2)) as verifier:
            cp = verifier.run_control_plane()
            assert cp.total_selected_routes == 256
            ribs = verifier.collected_ribs()
            assert len(ribs) == 20
            checker = verifier.checker()
            result = checker.check_reachability(
                Query(sources=("edge-0-0",), destinations=("edge-3-1",))
            )
            assert result.holds("edge-0-0", "edge-3-1")

    def test_cost_model_override(self, fattree4):
        model = CostModel(route_update_cost=100.0)
        slow = verify_snapshot(
            fattree4,
            S2Options(num_workers=2, cost_model=model, worker_capacity=1 << 62),
        )
        fast = verify_snapshot(
            fattree4, S2Options(num_workers=2, worker_capacity=1 << 62)
        )
        assert slow.cp_stats.modeled_wall_time > fast.cp_stats.modeled_wall_time

    def test_invalid_scheme_raises_at_construction(self, fattree4):
        with pytest.raises(ValueError):
            S2Verifier(fattree4, S2Options(partition_scheme="bogus"))
