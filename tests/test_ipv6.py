"""Tests for IPv6 support (the paper's §7 future work, implemented).

Covers the family-aware prefix type, parsing in both dialects, dual-stack
control-plane simulation, per-family FIBs, and the two-pass (per-family)
data-plane verification — distributed included.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.headerspace import HeaderEncoding
from repro.dataplane.fib import Fib, FibAction, FibEntry, NextHop
from repro.dataplane.queries import Query
from repro.dataplane.verifier import DataPlaneVerifier
from repro.dist.controller import S2Controller, S2Options
from repro.dist.sharding import make_shards, validate_shards
from repro.net.dcn import build_dcn, cluster_vlan6_aggregate, vlan6_prefix
from repro.net.ip import AddressError, Prefix, format_ipv6, parse_ipv6
from repro.routing.engine import SimulationEngine, collect_network_prefixes

v6_ints = st.integers(min_value=0, max_value=(1 << 128) - 1)
v6_lengths = st.integers(min_value=0, max_value=128)


@pytest.fixture(scope="module")
def dcn6():
    return build_dcn(scale=1, ipv6=True)


@pytest.fixture(scope="module")
def dcn6_sim(dcn6):
    engine = SimulationEngine(dcn6)
    routes = engine.run()
    return engine, routes


class TestPrefixV6:
    def test_parse_and_format(self):
        p = Prefix.parse("2001:db8::/48")
        assert p.is_ipv6 and p.width == 128 and p.length == 48
        assert str(p) == "2001:db8::/48"

    def test_bare_host(self):
        p = Prefix.parse("2001:db8::1")
        assert p.length == 128

    def test_host_bits_masked(self):
        assert Prefix.parse("2001:db8::ffff/64") == Prefix.parse(
            "2001:db8::/64"
        )

    def test_parse_v6_rejects_v4(self):
        with pytest.raises(AddressError):
            Prefix.parse_v6("10.0.0.0/8")

    def test_invalid_text(self):
        with pytest.raises(AddressError):
            parse_ipv6("zzzz::1::")

    def test_families_never_contain_each_other(self):
        v4 = Prefix.parse("0.0.0.0/0")
        v6 = Prefix.parse("::/0")
        assert not v4.contains(v6)
        assert not v6.contains(v4)
        assert not v4.overlaps(v6)

    def test_containment_within_v6(self):
        outer = Prefix.parse("2001:db8::/32")
        inner = Prefix.parse("2001:db8:3:4::/64")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_bits_width(self):
        p = Prefix.parse("8000::/1")
        assert p.bits() == (1,)
        assert Prefix.parse("::/0").bits() == ()

    def test_supernet_subnets(self):
        p = Prefix.parse("2001:db8:3::/48")
        assert p.supernet(32) == Prefix.parse("2001:db8::/32")
        subs = list(Prefix.parse("2001:db8::/47").subnets(48))
        assert len(subs) == 2 and all(s.width == 128 for s in subs)

    def test_distinct_from_same_int_v4(self):
        # same (network, length) in different families are different keys
        v4 = Prefix(0, 0)
        v6 = Prefix(0, 0, 128)
        assert v4 != v6
        assert len({v4, v6}) == 2

    @given(v6_ints)
    @settings(max_examples=50, deadline=None)
    def test_text_roundtrip(self, value):
        assert parse_ipv6(format_ipv6(value)) == value

    @given(v6_ints, v6_lengths)
    @settings(max_examples=50, deadline=None)
    def test_str_parse_roundtrip(self, network, length):
        p = Prefix(network, length, 128)
        assert Prefix.parse(str(p)) == p

    @given(v6_ints, v6_lengths)
    @settings(max_examples=50, deadline=None)
    def test_contains_own_network(self, network, length):
        p = Prefix(network, length, 128)
        assert p.contains_ip(p.network)
        assert p.contains_ip(p.broadcast)


class TestParsersV6:
    def test_cisco_v6_network_and_aggregate(self):
        from repro.config import parse_cisco

        cfg = parse_cisco(
            "hostname r\n"
            "router bgp 65001\n"
            " neighbor 10.0.0.1 remote-as 65002\n"
            " network 2001:db8:1:2::/64\n"
            " aggregate-address 2001:db8:1::/48 summary-only\n"
        )
        assert Prefix.parse("2001:db8:1:2::/64") in cfg.bgp.networks
        agg = cfg.bgp.aggregates[0]
        assert agg.prefix == Prefix.parse("2001:db8:1::/48")
        assert agg.summary_only

    def test_juniper_v6_network(self):
        from repro.config import parse_juniper

        cfg = parse_juniper(
            "system { host-name r; }\n"
            "routing-options { autonomous-system 65001; }\n"
            "protocols { bgp { network 2001:db8::/32; } }\n"
        )
        assert cfg.bgp.networks == [Prefix.parse("2001:db8::/32")]


class TestDualStackControlPlane:
    def test_v6_prefixes_collected(self, dcn6):
        prefixes = collect_network_prefixes(dcn6)
        v6 = {p for p in prefixes if p.is_ipv6}
        assert vlan6_prefix(0, 0) in v6
        assert cluster_vlan6_aggregate(3) in v6

    def test_v6_routes_propagate(self, dcn6_sim):
        _, routes = dcn6_sim
        assert vlan6_prefix(1, 0) in routes["c0-t0-0"]

    def test_v6_aggregation_summary_only(self, dcn6_sim):
        _, routes = dcn6_sim
        tor = routes["c0-t0-0"]
        assert cluster_vlan6_aggregate(3) in tor
        assert vlan6_prefix(3, 0) not in tor

    def test_v6_dpdg_cosharding(self, dcn6):
        shards = make_shards(dcn6, 8)
        assert validate_shards(shards, dcn6) == []
        holder = {p: s.index for s in shards for p in s.prefixes}
        assert holder[cluster_vlan6_aggregate(3)] == holder[vlan6_prefix(3, 0)]

    def test_v4_results_unchanged_by_dual_stack(self, dcn1_sim, dcn6_sim):
        _, v4_only = dcn1_sim
        _, dual = dcn6_sim
        for host, table in v4_only.items():
            dual_v4 = {
                p: r for p, r in dual[host].items() if not p.is_ipv6
            }
            assert set(dual_v4) == set(table), host


class TestFibV6:
    def test_separate_tries(self):
        fib = Fib("r")
        fib.add(
            FibEntry(
                prefix=Prefix.parse("::/0"),
                action=FibAction.FORWARD,
                next_hops=(NextHop(iface="v6default", node="x"),),
            )
        )
        fib.add(
            FibEntry(
                prefix=Prefix.parse("0.0.0.0/0"),
                action=FibAction.DROP,
            )
        )
        v6_hit = fib.lookup(parse_ipv6("2001:db8::1"), width=128)
        assert v6_hit.action is FibAction.FORWARD
        v4_hit = fib.lookup(0, width=32)
        assert v4_hit.action is FibAction.DROP

    def test_entries_family_filter(self):
        fib = Fib("r")
        fib.add(FibEntry(prefix=Prefix.parse("10.0.0.0/8"), action=FibAction.DROP))
        fib.add(FibEntry(prefix=Prefix.parse("2001::/16"), action=FibAction.DROP))
        assert len(fib.entries()) == 2
        assert len(fib.entries(width=128)) == 1
        assert fib.entries(width=128)[0].prefix.is_ipv6

    def test_v6_lpm(self):
        fib = Fib("r")
        fib.add(
            FibEntry(
                prefix=Prefix.parse("2001:db8::/32"),
                action=FibAction.FORWARD,
                next_hops=(NextHop(iface="a", node="x"),),
            )
        )
        fib.add(
            FibEntry(
                prefix=Prefix.parse("2001:db8:3::/48"),
                action=FibAction.FORWARD,
                next_hops=(NextHop(iface="b", node="y"),),
            )
        )
        hit = fib.lookup(parse_ipv6("2001:db8:3::9"), width=128)
        assert hit.next_hops[0].iface == "b"


class TestEncodingV6:
    def test_128_bit_layout(self):
        enc = HeaderEncoding(fields=("dst",), address_bits=128, metadata_bits=2)
        assert enc.num_vars == 130
        assert enc.metadata_var(0) == 128

    def test_prefix_bdd_family_guard(self):
        enc = HeaderEncoding(address_bits=128)
        engine = enc.make_engine()
        with pytest.raises(ValueError):
            enc.prefix_bdd(engine, Prefix.parse("10.0.0.0/8"))

    def test_v4_encoding_rejects_v6_prefix(self):
        enc = HeaderEncoding()
        engine = enc.make_engine()
        with pytest.raises(ValueError):
            enc.prefix_bdd(engine, Prefix.parse("2001:db8::/48"))

    def test_sat_count_over_v6(self):
        enc = HeaderEncoding(address_bits=128)
        engine = enc.make_engine()
        u = enc.prefix_bdd(engine, Prefix.parse("2001:db8::/32"))
        assert engine.sat_count(u, 128) == 1 << 96

    def test_bad_address_bits(self):
        with pytest.raises(ValueError):
            HeaderEncoding(address_bits=64)


class TestTwoPassVerification:
    def test_monolithic_v6_pass(self, dcn6_sim):
        engine, routes = dcn6_sim
        dpv = DataPlaneVerifier.from_simulation(
            engine, routes, encoding=HeaderEncoding(address_bits=128)
        )
        query = Query(
            sources=("c0-t0-0",),
            destinations=("c1-t0-0",),
            header_space=vlan6_prefix(1, 0),
        )
        assert dpv.check_reachability(query).holds("c0-t0-0", "c1-t0-0")

    def test_v6_unrouted_space_blackholes(self, dcn6_sim):
        engine, routes = dcn6_sim
        dpv = DataPlaneVerifier.from_simulation(
            engine, routes, encoding=HeaderEncoding(address_bits=128)
        )
        violations = dpv.checker().check_blackhole_free(
            Query(
                sources=("c0-t0-0",),
                header_space=Prefix.parse("fd00::/8"),
            )
        )
        assert violations  # no v6 default route: ULA space blackholes

    def test_distributed_v6_pass(self, dcn6):
        options = S2Options(
            num_workers=4,
            num_shards=6,
            encoding=HeaderEncoding(address_bits=128),
        )
        with S2Controller(dcn6, options) as controller:
            checker = controller.checker()
            query = Query(
                sources=("c0-t0-0",),
                destinations=("c3-t0-0",),
                header_space=vlan6_prefix(3, 0),
            )
            result = checker.check_reachability(query)
            assert result.holds("c0-t0-0", "c3-t0-0")
            assert controller.dpo.stats.packets_crossed > 0

    def test_distributed_v6_ribs_match_monolithic(self, dcn6, dcn6_sim):
        from tests.conftest import normalize_ribs

        _, expected = dcn6_sim
        with S2Controller(
            dcn6, S2Options(num_workers=4, num_shards=6)
        ) as controller:
            controller.run_control_plane()
            got = controller.collected_ribs()
            assert normalize_ribs(got) == normalize_ribs(expected)
