"""Tests for the experiment harness: scaling registry, runners, tables."""

import pytest

from repro.harness.experiments import (
    ROW_HEADERS,
    ExperimentRow,
    run_batfish,
    run_bonsai,
    run_fig6_scale_out,
    run_fig9_shard_count,
    run_s2,
    sweep_sizes,
)
from repro.harness.reporting import format_bytes, format_status, format_table
from repro.harness.scaling import (
    PAPER_SIZES,
    SCALED_SIZES,
    capacity_for_sweep,
    measured_single_server_peak,
    sweep,
)
from repro.net.fattree import build_fattree


class TestScalingRegistry:
    def test_sweep_pairs_sizes(self):
        points = sweep(3)
        assert [(p.k, p.paper_k) for p in points] == [
            (4, 40),
            (6, 50),
            (8, 60),
        ]
        assert points[0].label == "FatTree40 (k=4)"
        assert points[0].num_switches == 20
        assert points[0].paper_switches == 2000

    def test_sweep_sizes_env_override(self, monkeypatch):
        monkeypatch.setenv("S2_BENCH_SIZES", "4,6")
        assert sweep_sizes() == [(4, 40), (6, 50)]

    def test_sweep_sizes_default(self, monkeypatch):
        monkeypatch.delenv("S2_BENCH_SIZES", raising=False)
        assert sweep_sizes(2) == [(4, 40), (6, 50)]

    def test_off_registry_size_named_by_rule(self, monkeypatch):
        monkeypatch.setenv("S2_BENCH_SIZES", "16")
        assert sweep_sizes() == [(16, 160)]

    def test_measured_peak_cached_and_positive(self):
        first = measured_single_server_peak(4)
        second = measured_single_server_peak(4)
        assert first == second > 0

    def test_capacity_scales_with_headroom(self):
        low = capacity_for_sweep(4, headroom=1.0)
        high = capacity_for_sweep(4, headroom=2.0)
        assert high == pytest.approx(low * 2, rel=0.01)

    def test_capacity_grows_with_k(self):
        assert capacity_for_sweep(6) > capacity_for_sweep(4)


class TestRunners:
    def test_run_s2_row(self, fattree4):
        row, result = run_s2(
            fattree4, 2, 2, 1 << 62, "s2-2w", "FatTree40 (k=4)"
        )
        assert row.status == "ok"
        assert row.series == "s2-2w"
        assert row.modeled_time > 0
        assert row.extra["routes"] == 256
        assert result.ok

    def test_run_s2_cp_only(self, fattree4):
        row, result = run_s2(
            fattree4, 2, 2, 1 << 62, "cp", "w", cp_only=True
        )
        assert row.status == "ok"
        assert result.dp_stats is None
        assert row.extra["bgp_rounds"] > 0

    def test_run_s2_oom_row(self, fattree4):
        row, result = run_s2(fattree4, 2, 0, 1, "s2", "w")
        assert row.status == "oom"
        assert not result.ok

    def test_run_batfish_row(self, fattree4):
        row = run_batfish(fattree4, 1 << 62, "w")
        assert row.status == "ok"
        assert row.extra["routes"] == 256

    def test_run_batfish_oom_row(self, fattree4):
        row = run_batfish(fattree4, 1, "w")
        assert row.status == "oom"
        assert "error" in row.extra

    def test_run_bonsai_row(self, fattree4):
        row = run_bonsai(fattree4, 1 << 62, "w")
        assert row.status == "ok"
        assert row.extra["destinations"] == 8
        assert row.extra["reachable"] == 8

    def test_run_bonsai_timeout_row(self, fattree4):
        row = run_bonsai(fattree4, 1 << 62, "w", time_budget=1.0)
        assert row.status == "timeout"

    def test_fig6_shape_small(self):
        rows = run_fig6_scale_out(k=4, worker_counts=(1, 4))
        assert len(rows) == 2
        assert all(r.status == "ok" for r in rows)
        # more workers -> lower per-worker peak memory
        assert rows[1].peak_memory < rows[0].peak_memory

    def test_fig9_memory_monotone_small(self):
        rows = run_fig9_shard_count(k=4, shard_counts=(1, 4, 8))
        peaks = [r.peak_memory for r in rows]
        assert peaks == sorted(peaks, reverse=True)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [["a", 1], ["long-name", 23.456]],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "23.46" in lines[4]

    def test_cell_rendering(self):
        table = format_table(
            ["x"], [[None], [True], [False], [12345.6]]
        )
        assert "-" in table
        assert "yes" in table and "no" in table
        assert "12,346" in table

    def test_format_bytes(self):
        assert format_bytes(1 << 20) == "1.0MB"

    def test_format_status(self):
        assert format_status("oom") == "OOM"
        assert format_status("ok") == "ok"
        assert format_status("timeout") == "T/O"
        assert format_status("weird") == "weird"

    def test_row_cells(self):
        row = ExperimentRow(
            experiment="figX",
            series="s",
            workload="w",
            modeled_time=1.0,
            peak_memory=1 << 20,
            wall_seconds=0.5,
        )
        cells = row.as_cells()
        assert len(cells) == len(ROW_HEADERS)
        assert "1.0MB" in cells
