"""Tests for the process-backed worker runtime (one OS process per worker)."""

import os

import pytest

from tests.conftest import normalize_ribs
from repro.dataplane.queries import Query
from repro.dist.controller import S2Controller, S2Options
from repro.dist.process_runtime import (
    ProcessWorkerPool,
    RemoteWorkerError,
    WorkerProcessProxy,
)
from repro.dist.resources import CostModel, SimulatedOOM


@pytest.fixture()
def process_controller(fattree4):
    controller = S2Controller(
        fattree4,
        S2Options(num_workers=3, num_shards=2, runtime="process"),
    )
    yield controller
    controller.close()


class TestProcessCluster:
    def test_workers_are_proxies(self, process_controller):
        assert all(
            isinstance(w, WorkerProcessProxy)
            for w in process_controller.workers
        )

    def test_ribs_match_monolithic(self, process_controller, fattree4_sim):
        _, expected = fattree4_sim
        process_controller.run_control_plane()
        got = process_controller.collected_ribs()
        assert normalize_ribs(got) == normalize_ribs(expected)

    def test_full_verification(self, fattree4):
        from repro.core.s2 import verify_snapshot

        result = verify_snapshot(
            fattree4, S2Options(num_workers=3, num_shards=2, runtime="process")
        )
        assert result.ok
        assert result.reachable_pairs == 64

    def test_dataplane_queries(self, process_controller):
        checker = process_controller.checker()
        result = checker.check_reachability(
            Query(sources=("edge-0-0",), destinations=("edge-2-1",))
        )
        assert result.holds("edge-0-0", "edge-2-1")

    def test_oom_relayed_from_process(self, fattree4):
        from repro.core.s2 import verify_snapshot

        result = verify_snapshot(
            fattree4,
            S2Options(num_workers=2, runtime="process", worker_capacity=1),
        )
        assert result.status == "oom"

    def test_resource_mirror_tracks_peaks(self, process_controller):
        process_controller.run_control_plane()
        for proxy in process_controller.workers:
            assert proxy.resources.peak_bytes > 0

    def test_rpc_accounting_still_charged(self, process_controller):
        process_controller.run_control_plane()
        report = process_controller.report()
        assert report.total_rpc_bytes > 0

    def test_processes_die_on_close(self, fattree4):
        controller = S2Controller(
            fattree4, S2Options(num_workers=2, runtime="process")
        )
        processes = [w._process for w in controller.workers]
        assert all(p.is_alive() for p in processes)
        controller.close()
        assert all(not p.is_alive() for p in processes)

    def test_remote_error_surfaces(self, process_controller):
        proxy = process_controller.workers[0]
        with pytest.raises(RemoteWorkerError):
            proxy._call("no_such_method")

    def test_shard_flush_happens_in_worker_process(self, process_controller):
        process_controller.run_control_plane()
        store_dir = process_controller.store.directory
        files = [f for f in os.listdir(store_dir) if f.endswith(".rib")]
        # 3 workers x 2 shards
        assert len(files) == 6


class TestPoolDirect:
    def test_pool_lifecycle(self, fattree4):
        from repro.dist.partition import partition

        assignment = partition(fattree4, 2).assignment
        pool = ProcessWorkerPool(
            snapshot=fattree4,
            assignment=assignment,
            num_workers=2,
            capacity=1 << 62,
            cost_model=CostModel(),
        )
        try:
            for proxy in pool.proxies:
                proxy.begin_shard(None)
                assert proxy.pending_packets == 0
        finally:
            pool.close()

    def test_stop_is_idempotent(self, fattree4):
        from repro.dist.partition import partition

        assignment = partition(fattree4, 1).assignment
        pool = ProcessWorkerPool(
            snapshot=fattree4,
            assignment=assignment,
            num_workers=1,
            capacity=1 << 62,
            cost_model=CostModel(),
        )
        pool.close()
        pool.close()  # second close must not raise
