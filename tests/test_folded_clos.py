"""Structural invariants of the multi-DC folded-Clos synthesizer.

Every count below is pinned against :class:`FoldedClosSpec`'s derived
properties — the spec predicts, the built snapshot must agree — and the
uniqueness checks (loopbacks, leaf prefixes, ASNs) are the properties
the ground-truth oracle relies on when it walks cross-DC paths.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.config.loader import parse_device
from repro.net.folded_clos import (
    FoldedClosSpec,
    build_folded_clos,
    leaf_prefix,
    render_configs,
)

SPECS = [
    FoldedClosSpec(),                                    # 2 DC default
    FoldedClosSpec(dcs=3, pods=2, leaves=3, spines=2, fanout=2),
    FoldedClosSpec(dcs=2, pods=1, leaves=2, spines=3, fanout=1,
                   prefixes_per_leaf=2),
]


@pytest.mark.parametrize(
    "spec", SPECS, ids=[f"d{s.dcs}p{s.pods}l{s.leaves}" for s in SPECS]
)
def test_device_and_link_counts_match_spec(spec):
    snapshot = build_folded_clos(
        dcs=spec.dcs, pods=spec.pods, leaves=spec.leaves,
        spines=spec.spines, fanout=spec.fanout,
        prefixes_per_leaf=spec.prefixes_per_leaf,
    )
    assert len(snapshot.configs) == spec.num_devices
    links = list(snapshot.topology.links())
    assert len(links) == spec.num_links
    roles = Counter(node.role for node in snapshot.topology.nodes())
    assert roles["leaf"] == spec.dcs * spec.pods * spec.leaves
    assert roles["spine"] == spec.dcs * spec.pods * spec.spines
    assert roles["superspine"] == spec.dcs * spec.super_spines_per_dc


def test_links_are_symmetric_point_to_point():
    snapshot = build_folded_clos()
    endpoints = Counter()
    for link in snapshot.topology.links():
        assert link.a.node != link.b.node
        endpoints[(link.a.node, link.a.interface)] += 1
        endpoints[(link.b.node, link.b.interface)] += 1
    # every (node, interface) terminates exactly one link
    assert all(count == 1 for count in endpoints.values())


def test_loopbacks_and_prefixes_unique_across_dcs():
    spec = FoldedClosSpec(dcs=3, pods=2, leaves=2, spines=2)
    snapshot = build_folded_clos(dcs=3, pods=2, leaves=2, spines=2)
    loopbacks, host_prefixes = [], []
    for config in snapshot.configs.values():
        assert config.bgp is not None
        for prefix in config.bgp.networks:
            (loopbacks if prefix.length == 32 else host_prefixes).append(
                prefix
            )
    assert len(loopbacks) == len(set(loopbacks)) == spec.num_devices
    assert len(host_prefixes) == len(set(host_prefixes)) == spec.num_prefixes
    # the prefix plan folds the DC into the second octet by construction
    assert leaf_prefix(spec, 0, 0, 0) != leaf_prefix(spec, 1, 0, 0)
    for prefix in host_prefixes:
        assert (prefix.network >> 24) == 10
        assert prefix.length == 24


def test_asns_are_unique():
    snapshot = build_folded_clos()
    asns = [config.bgp.asn for config in snapshot.configs.values()]
    assert len(asns) == len(set(asns))


def test_both_dialects_render_and_parse():
    spec = FoldedClosSpec(juniper_fraction=0.5)
    texts = render_configs(spec)
    dialects = {dialect for dialect, _text in texts.values()}
    assert dialects == {"ciscoish", "juniperish"}
    for hostname, (dialect, text) in texts.items():
        config = parse_device(text, dialect)
        assert config.hostname == hostname
        assert config.bgp is not None
        assert config.bgp.networks
    # and the mixed-dialect snapshot assembles end to end
    snapshot = build_folded_clos(juniper_fraction=0.5)
    assert len(snapshot.configs) == spec.num_devices


def test_annotation_carries_dc_and_pod():
    snapshot = build_folded_clos(dcs=2)
    assert snapshot.metadata["kind"] == "folded-clos"
    for node in snapshot.topology.nodes():
        assert node.cluster == int(node.name[2:node.name.index("-")])
        if node.role in ("leaf", "spine"):
            assert node.pod is not None
        assert node.layer in (0, 1, 2)


def test_spec_validation_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FoldedClosSpec(dcs=0)
    with pytest.raises(ValueError):
        FoldedClosSpec(dcs=128, pods=3)  # 384 > 255 second octets
    with pytest.raises(ValueError):
        FoldedClosSpec(leaves=200, prefixes_per_leaf=2)
