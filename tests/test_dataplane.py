"""Tests for predicate compilation, symbolic forwarding, and queries.

Built around a hand-made 4-node line topology where every behaviour
(receive, forward, ACL drop, Null0 drop, exit port, static loop) can be
injected precisely.
"""

import pytest

from repro.bdd.engine import FALSE, TRUE
from repro.bdd.headerspace import HeaderEncoding
from repro.config.loader import make_snapshot, parse_device
from repro.dataplane.fib import NextHopResolver
from repro.dataplane.forwarding import (
    FinalState,
    ForwardingContext,
    PacketBuffer,
    SymbolicPacket,
    inject,
    run_to_completion,
)
from repro.dataplane.queries import Query
from repro.dataplane.verifier import DataPlaneVerifier
from repro.net.ip import Prefix, format_ip
from repro.routing.engine import SimulationEngine


def device(hostname, asn, ifaces, neighbors, extra_bgp="", body=""):
    lines = [f"hostname {hostname}"]
    for name, ip, length in ifaces:
        mask = format_ip(Prefix(Prefix.parse(ip).network, length).mask)
        lines += [f"interface {name}", f" ip address {ip} {mask}"]
    if body:
        lines.append(body.rstrip())
    lines.append(f"router bgp {asn}")
    for peer, peer_asn in neighbors:
        lines.append(f" neighbor {peer} remote-as {peer_asn}")
    if extra_bgp:
        lines.append(extra_bgp.rstrip())
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="module")
def line_env():
    """src(10.1.0.0/24) -- mid -- dst(10.2.0.0/24); mid has an ACL that
    drops tcp/23 toward dst, a Null0 for 192.168/16, and an edge stub
    port with a static route sending 203.0.113.0/24 out of it."""
    src = device(
        "src", 65001,
        [("eth0", "10.0.0.0", 31)],
        [("10.0.0.1", 65002)],
        extra_bgp=" network 10.1.0.0 mask 255.255.255.0",
    )
    mid = device(
        "mid", 65002,
        [("eth0", "10.0.0.1", 31), ("eth1", "10.0.0.2", 31),
         ("stub", "198.51.100.1", 24)],
        [("10.0.0.0", 65001), ("10.0.0.3", 65003)],
        body=(
            "ip access-list extended NOTELNET\n"
            " 10 deny tcp any any eq 23\n"
            " 20 permit ip any any\n"
            "ip route 192.168.0.0 255.255.0.0 Null0\n"
            "ip route 203.0.113.0 255.255.255.0 stub\n"
        ),
        extra_bgp=" redistribute static",
    )
    # attach ACL outbound on eth1 (toward dst)
    mid = mid.replace(
        "interface eth1\n ip address 10.0.0.2 255.255.255.254",
        "interface eth1\n ip address 10.0.0.2 255.255.255.254\n"
        " ip access-group NOTELNET out",
    )
    dst = device(
        "dst", 65003,
        [("eth0", "10.0.0.3", 31)],
        [("10.0.0.2", 65002)],
        extra_bgp=" network 10.2.0.0 mask 255.255.255.0",
    )
    configs = {}
    for text in (src, mid, dst):
        cfg = parse_device(text, "ciscoish")
        configs[cfg.hostname] = cfg
    snapshot = make_snapshot(configs)
    engine = SimulationEngine(snapshot)
    routes = engine.run()
    encoding = HeaderEncoding(fields=("dst", "proto", "dport"), metadata_bits=2)
    dpv = DataPlaneVerifier.from_simulation(engine, routes, encoding=encoding)
    dpv.compile_predicates()
    return snapshot, engine, dpv, encoding


class TestPredicates:
    def test_predicates_tile_header_space(self, line_env):
        _, _, dpv, _ = line_env
        for name, predicates in dpv.context.predicates.items():
            union = predicates.receive
            union = dpv.engine.or_(union, predicates.drop)
            for fwd in predicates.forward.values():
                union = dpv.engine.or_(union, fwd)
            assert union == TRUE, f"{name} predicates do not tile"

    def test_receive_disjoint_from_drop(self, line_env):
        _, _, dpv, _ = line_env
        for predicates in dpv.context.predicates.values():
            assert dpv.engine.and_(predicates.receive, predicates.drop) == FALSE

    def test_forward_disjoint_from_receive(self, line_env):
        _, _, dpv, _ = line_env
        for predicates in dpv.context.predicates.values():
            for fwd in predicates.forward.values():
                assert dpv.engine.and_(fwd, predicates.receive) == FALSE

    def test_lpm_carving(self, line_env):
        """mid's Null0 for 192.168/16 must not swallow 10.2/24 traffic."""
        _, _, dpv, encoding = line_env
        mid = dpv.context.predicates["mid"]
        to_dst = encoding.prefix_bdd(dpv.engine, Prefix.parse("10.2.0.0/24"))
        assert dpv.engine.and_(to_dst, mid.drop) == FALSE

    def test_acl_predicate_compiled(self, line_env):
        _, _, dpv, encoding = line_env
        mid = dpv.context.predicates["mid"]
        acl_out = mid.acl_out_for("eth1")
        telnet = dpv.engine.and_(
            encoding.value_bdd(dpv.engine, "proto", 6),
            encoding.value_bdd(dpv.engine, "dport", 23),
        )
        assert dpv.engine.and_(telnet, acl_out) == FALSE


class TestForwardingFinalStates:
    def test_arrive(self, line_env):
        _, _, dpv, encoding = line_env
        finals = dpv.forward(["src"], TRUE)
        arrived = [f for f in finals if f.state is FinalState.ARRIVE and f.node == "dst"]
        assert arrived
        to_dst = encoding.prefix_bdd(dpv.engine, Prefix.parse("10.2.0.0/24"))
        got = FALSE
        for f in arrived:
            got = dpv.engine.or_(got, f.bdd)
        # everything headed to 10.2/24 except telnet arrives
        telnet = dpv.engine.and_(
            encoding.value_bdd(dpv.engine, "proto", 6),
            encoding.value_bdd(dpv.engine, "dport", 23),
        )
        assert dpv.engine.implies(got, to_dst)
        assert dpv.engine.and_(got, telnet) == FALSE

    def test_acl_blackhole(self, line_env):
        _, _, dpv, encoding = line_env
        telnet_to_dst = dpv.engine.and_(
            encoding.prefix_bdd(dpv.engine, Prefix.parse("10.2.0.0/24")),
            dpv.engine.and_(
                encoding.value_bdd(dpv.engine, "proto", 6),
                encoding.value_bdd(dpv.engine, "dport", 23),
            ),
        )
        finals = dpv.forward(["src"], telnet_to_dst)
        assert all(f.state is FinalState.BLACKHOLE for f in finals)
        assert any(f.node == "mid" for f in finals)

    def test_null0_blackhole(self, line_env):
        _, _, dpv, encoding = line_env
        to_null = encoding.prefix_bdd(
            dpv.engine, Prefix.parse("192.168.5.0/24")
        )
        finals = dpv.forward(["src"], to_null)
        blackholes = [f for f in finals if f.state is FinalState.BLACKHOLE]
        assert any(f.node == "mid" for f in blackholes)

    def test_exit_via_edge_port(self, line_env):
        _, _, dpv, encoding = line_env
        to_stub_route = encoding.prefix_bdd(
            dpv.engine, Prefix.parse("203.0.113.0/24")
        )
        finals = dpv.forward(["src"], to_stub_route)
        exits = [f for f in finals if f.state is FinalState.EXIT]
        assert exits and exits[0].node == "mid" and exits[0].out_port == "stub"

    def test_unknown_space_blackholes_at_source(self, line_env):
        _, _, dpv, encoding = line_env
        unknown = encoding.prefix_bdd(dpv.engine, Prefix.parse("55.0.0.0/8"))
        finals = dpv.forward(["src"], unknown)
        assert len(finals) == 1
        assert finals[0].state is FinalState.BLACKHOLE
        assert finals[0].node == "src"
        assert finals[0].hops == 0

    def test_trace_records_path(self, line_env):
        _, _, dpv, encoding = line_env
        to_dst = encoding.prefix_bdd(dpv.engine, Prefix.parse("10.2.0.0/24"))
        finals = dpv.forward(["src"], to_dst, trace=True)
        arrived = [f for f in finals if f.state is FinalState.ARRIVE]
        assert arrived[0].path == ("src", "mid", "dst")


class TestLoopDetection:
    @pytest.fixture(scope="class")
    def loop_env(self):
        """Two routers with static default routes pointing at each other:
        a genuine forwarding loop for unrouted space."""
        a = device(
            "a", 65001,
            [("eth0", "10.0.0.0", 31)],
            [("10.0.0.1", 65002)],
            body="ip route 0.0.0.0 0.0.0.0 10.0.0.1\n",
            extra_bgp=" network 10.1.0.0 mask 255.255.255.0",
        )
        b = device(
            "b", 65002,
            [("eth0", "10.0.0.1", 31)],
            [("10.0.0.0", 65001)],
            body="ip route 0.0.0.0 0.0.0.0 10.0.0.0\n",
        )
        configs = {}
        for text in (a, b):
            cfg = parse_device(text, "ciscoish")
            configs[cfg.hostname] = cfg
        snapshot = make_snapshot(configs)
        engine = SimulationEngine(snapshot)
        routes = engine.run()
        dpv = DataPlaneVerifier.from_simulation(
            engine, routes, max_hops=12
        )
        return dpv

    def test_loop_final_state(self, loop_env):
        dpv = loop_env
        finals = dpv.forward(["a"], TRUE)
        loops = [f for f in finals if f.state is FinalState.LOOP]
        assert loops
        # looped packets are those in neither 10.1/24 nor the link subnet
        assert all(f.hops >= 12 for f in loops)

    def test_loop_free_checker_flags_it(self, loop_env):
        violations = loop_env.checker().check_loop_free(
            Query(sources=("a",))
        )
        assert violations
        assert violations[0].state is FinalState.LOOP

    def test_multipath_consistency_flags_divergence(self, loop_env):
        # from a: 10.1/24 arrives locally; other space loops -> both states
        # exist but must not overlap; craft an overlap via b instead:
        violations = loop_env.checker().check_multipath_consistency(
            Query(sources=("a",))
        )
        # arrive/loop/blackhole sets are disjoint here
        assert violations == []


class TestQueries:
    def test_reachability_result_api(self, line_env):
        _, _, dpv, _ = line_env
        result = dpv.check_reachability(
            Query(sources=("src",), destinations=("dst",))
        )
        assert result.holds("src", "dst")
        assert not result.holds("dst", "src")  # dst was not a source
        assert result.pairs() == [("src", "dst")]

    def test_single_pair_with_header_space(self, line_env):
        _, _, dpv, _ = line_env
        q = Query.single_pair("src", "dst", Prefix.parse("10.2.0.0/25"))
        result = dpv.check_reachability(q)
        assert result.holds("src", "dst")

    def test_unreachable_header_space(self, line_env):
        _, _, dpv, _ = line_env
        q = Query.single_pair("src", "dst", Prefix.parse("55.0.0.0/8"))
        result = dpv.check_reachability(q)
        assert not result.holds("src", "dst")

    def test_waypoint_holds_through_mid(self, line_env):
        _, _, dpv, _ = line_env
        q = Query(
            sources=("src",),
            destinations=("dst",),
            transits=("mid",),
            header_space=Prefix.parse("10.2.0.0/24"),
        )
        violations = dpv.checker().check_waypoint(q)
        assert violations == {"mid": []}

    def test_waypoint_violated_by_unvisited_node(self, line_env):
        _, _, dpv, _ = line_env
        # dst-bound traffic never passes through... src? it originates
        # there; use a transit that is NOT on the path: the stub side has
        # no node, so use "dst"->"src" direction with transit "dst".
        q = Query(
            sources=("src",),
            destinations=("src",),  # self-arrival of own prefix
            transits=("dst",),
            header_space=Prefix.parse("10.1.0.0/24"),
        )
        violations = dpv.checker().check_waypoint(q)
        assert violations["dst"], "traffic to own prefix never visits dst"

    def test_blackhole_checker_reports_witness(self, line_env):
        _, _, dpv, _ = line_env
        violations = dpv.checker().check_blackhole_free(
            Query(sources=("src",), header_space=Prefix.parse("192.168.0.0/16"))
        )
        assert violations
        assert "dst=192.168" in violations[0].example

    def test_multipath_checker_requires_single_source(self, line_env):
        _, _, dpv, _ = line_env
        with pytest.raises(ValueError):
            dpv.checker().check_multipath_consistency(
                Query(sources=("src", "dst"))
            )


class TestPacketBuffer:
    def test_merges_same_position(self, line_env):
        _, _, dpv, encoding = line_env
        buffer = PacketBuffer(dpv.engine)
        a = encoding.prefix_bdd(dpv.engine, Prefix.parse("10.2.0.0/25"))
        b = encoding.prefix_bdd(dpv.engine, Prefix.parse("10.2.0.128/25"))
        for bdd in (a, b):
            buffer.push(
                SymbolicPacket(bdd=bdd, node="mid", in_port="eth0", hops=1, source="src")
            )
        wave = buffer.pop_wave()
        assert len(wave) == 1
        assert wave[0].bdd == dpv.engine.or_(a, b)

    def test_does_not_merge_different_hops(self, line_env):
        _, _, dpv, _ = line_env
        buffer = PacketBuffer(dpv.engine)
        for hops in (1, 2):
            buffer.push(
                SymbolicPacket(bdd=TRUE, node="mid", in_port="eth0", hops=hops, source="src")
            )
        first = buffer.pop_wave()
        second = buffer.pop_wave()
        assert len(first) == 1 and first[0].hops == 1
        assert len(second) == 1 and second[0].hops == 2

    def test_traced_packets_bypass_merging(self, line_env):
        _, _, dpv, _ = line_env
        buffer = PacketBuffer(dpv.engine)
        for i in range(2):
            buffer.push(
                SymbolicPacket(
                    bdd=TRUE, node="mid", in_port="eth0", hops=1,
                    source="src", path=("src",),
                )
            )
        assert len(buffer.pop_wave()) == 2

    def test_bool_and_len(self, line_env):
        _, _, dpv, _ = line_env
        buffer = PacketBuffer(dpv.engine)
        assert not buffer
        buffer.push(
            SymbolicPacket(bdd=TRUE, node="x", in_port=None, hops=0, source="x")
        )
        assert buffer and len(buffer) == 1
