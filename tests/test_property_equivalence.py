"""Property-based equivalence: on *randomly generated* networks, the
distributed verifier equals the monolithic one, sharded equals unsharded,
and the compiled predicates tile the header space.

These are the repository's strongest correctness tests: hypothesis
synthesizes small random topologies (random trees plus chords, random
prefix announcements, random local-pref policies) instead of relying on
the hand-built FatTree/DCN families.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import normalize_ribs
from repro.bdd.engine import FALSE, TRUE
from repro.bdd.headerspace import HeaderEncoding
from repro.config.loader import make_snapshot, parse_device
from repro.dataplane.fib import Fib, FibAction, FibEntry, NextHop
from repro.dataplane.predicates import PortPredicates
from repro.dist.controller import S2Controller, S2Options
from repro.dist.sharding import make_shards
from repro.net.ip import Prefix, format_ip
from repro.routing.engine import SimulationEngine


# -- random network generation -------------------------------------------------

network_specs = st.builds(
    dict,
    n=st.integers(3, 7),
    # parent[i] < i: a random tree over the routers
    parents=st.lists(st.integers(0, 5), min_size=6, max_size=6),
    # which routers announce a prefix
    announcers=st.sets(st.integers(0, 6), min_size=1, max_size=4),
    # extra chord links (i, j) to densify the tree
    chords=st.sets(
        st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=3
    ),
    # routers applying a local-pref-raising import policy on all sessions
    preferers=st.sets(st.integers(0, 6), max_size=2),
)


def build_random_network(spec):
    n = spec["n"]
    edges = set()
    for i in range(1, n):
        edges.add((spec["parents"][i - 1] % i, i))
    for a, b in spec["chords"]:
        a, b = a % n, b % n
        if a != b:
            edges.add((min(a, b), max(a, b)))
    edges = sorted(edges)
    link_base = Prefix.parse("100.64.0.0/16").network
    iface_count = [0] * n
    sessions = [[] for _ in range(n)]  # (local, peer, peer_asn)
    for index, (a, b) in enumerate(edges):
        low = link_base + 2 * index
        sessions[a].append((low, low + 1, 65001 + b))
        sessions[b].append((low + 1, low, 65001 + a))
    texts = []
    for i in range(n):
        lines = [f"hostname r{i}"]
        for j, (local, _peer, _pasn) in enumerate(sessions[i]):
            mask = format_ip(Prefix(local, 31).mask)
            lines += [f"interface e{j}", f" ip address {format_ip(local)} {mask}"]
        if i in {v % n for v in spec["preferers"]}:
            lines += [
                "route-map PREF permit 10",
                " set local-preference 150",
            ]
        lines.append(f"router bgp {65001 + i}")
        lines.append(" maximum-paths 8")
        for local, peer, peer_asn in sessions[i]:
            lines.append(f" neighbor {format_ip(peer)} remote-as {peer_asn}")
            if i in {v % n for v in spec["preferers"]}:
                lines.append(f" neighbor {format_ip(peer)} route-map PREF in")
        if i in {v % n for v in spec["announcers"]}:
            lines.append(
                f" network 10.{i}.0.0 mask 255.255.0.0"
            )
        texts.append("\n".join(lines) + "\n")
    configs = {}
    for text in texts:
        config = parse_device(text, "ciscoish")
        configs[config.hostname] = config
    return make_snapshot(configs, name="random")


common_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRandomNetworkEquivalence:
    @given(network_specs, st.integers(2, 4))
    @common_settings
    def test_distributed_equals_monolithic(self, spec, workers):
        snapshot = build_random_network(spec)
        engine = SimulationEngine(snapshot)
        expected = normalize_ribs(engine.run())
        with S2Controller(
            snapshot,
            S2Options(num_workers=workers, partition_scheme="random"),
        ) as controller:
            controller.run_control_plane()
            got = normalize_ribs(controller.collected_ribs())
        assert got == expected

    @given(network_specs, st.integers(2, 5))
    @common_settings
    def test_sharded_equals_unsharded(self, spec, num_shards):
        snapshot = build_random_network(spec)
        engine = SimulationEngine(snapshot)
        expected = engine.run()
        engine2 = SimulationEngine(build_random_network(spec))
        shards = make_shards(snapshot, num_shards)
        sharded = engine2.run([s.prefixes for s in shards])
        assert sharded == expected

    @given(network_specs)
    @common_settings
    def test_best_paths_are_policy_consistent(self, spec):
        """Every selected route's local-pref matches whether the holder
        applies the local-pref-raising import policy."""
        snapshot = build_random_network(spec)
        engine = SimulationEngine(snapshot)
        routes = engine.run()
        n = spec["n"]
        preferers = {f"r{v % n}" for v in spec["preferers"]}
        for host, table in routes.items():
            expected_lp = 150 if host in preferers else 100
            for ecmp in table.values():
                for route in ecmp:
                    assert route.local_pref == expected_lp


class TestRandomFibPredicates:
    fib_entries = st.lists(
        st.tuples(
            st.integers(0, (1 << 32) - 1),
            st.integers(0, 16),
            st.sampled_from(["fwd0", "fwd1", "recv", "drop"]),
        ),
        min_size=1,
        max_size=12,
    )

    @given(fib_entries)
    @settings(max_examples=40, deadline=None)
    def test_predicates_tile_and_respect_lpm(self, raw):
        """Compiled predicates partition the header space, and every
        concrete lookup agrees with the trie's LPM answer."""
        from repro.dataplane.predicates import compile_predicates
        from repro.config.ast import DeviceConfig

        fib = Fib("r")
        for network, length, action in raw:
            prefix = Prefix(network, length)
            if action == "recv":
                fib.add(FibEntry(prefix=prefix, action=FibAction.RECEIVE))
            elif action == "drop":
                fib.add(FibEntry(prefix=prefix, action=FibAction.DROP))
            else:
                fib.add(
                    FibEntry(
                        prefix=prefix,
                        action=FibAction.FORWARD,
                        next_hops=(NextHop(iface=action, node="x"),),
                    )
                )
        encoding = HeaderEncoding()
        engine = encoding.make_engine()
        predicates = compile_predicates(
            DeviceConfig(hostname="r"), fib, engine, encoding
        )
        union = engine.or_(predicates.receive, predicates.drop)
        pieces = [predicates.receive, predicates.drop]
        for fwd in predicates.forward.values():
            union = engine.or_(union, fwd)
            pieces.append(fwd)
        assert union == TRUE
        # pairwise disjoint
        for i in range(len(pieces)):
            for j in range(i + 1, len(pieces)):
                assert engine.and_(pieces[i], pieces[j]) == FALSE
        # spot-check LPM agreement on the entries' own network addresses
        for network, length, _action in raw:
            probe = Prefix(network, length).network
            hit = fib.lookup(probe)
            probe_bdd = encoding.value_bdd(engine, "dst", probe)
            if hit is None:
                assert engine.implies(probe_bdd, predicates.drop)
            elif hit.action is FibAction.RECEIVE:
                assert engine.implies(probe_bdd, predicates.receive)
            elif hit.action is FibAction.DROP:
                assert engine.implies(probe_bdd, predicates.drop)
            else:
                iface = hit.next_hops[0].iface
                assert engine.implies(
                    probe_bdd, predicates.forward[iface]
                )
