"""Property-based equivalence: on *randomly generated* networks, the
distributed verifier equals the monolithic one, sharded equals unsharded,
and the compiled predicates tile the header space.

These are the repository's strongest correctness tests.  The networks
come from :mod:`repro.fuzz.generators` — the same seeded generator the
``repro fuzz`` command uses — so they cover both vendor dialects, iBGP
islands, route-maps, aggregation, conditional advertisement, and
dual-stack prefixes, at larger sizes than the old inline generator did.
Hypothesis drives the generator seed and the worker/shard counts.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import normalize_ribs
from repro.bdd.engine import FALSE, TRUE
from repro.bdd.headerspace import HeaderEncoding
from repro.dataplane.fib import Fib, FibAction, FibEntry, NextHop
from repro.dist.controller import S2Controller, S2Options
from repro.dist.sharding import make_shards
from repro.fuzz.generators import (
    GeneratorProfile,
    build_snapshot,
    generate_spec,
)
from repro.net.ip import Prefix
from repro.routing.engine import SimulationEngine


# Larger networks than the generator's default profile: up to 16 routers
# with every feature class enabled.
PROPERTY_PROFILE = GeneratorProfile(min_nodes=4, max_nodes=16)

common_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRandomNetworkEquivalence:
    @given(st.integers(0, 10_000), st.integers(2, 4))
    @common_settings
    def test_distributed_equals_monolithic(self, seed, workers):
        spec = generate_spec(seed, PROPERTY_PROFILE)
        expected = normalize_ribs(
            SimulationEngine(build_snapshot(spec)).run()
        )
        with S2Controller(
            build_snapshot(spec),
            S2Options(num_workers=workers, partition_scheme="random"),
        ) as controller:
            controller.run_control_plane()
            got = normalize_ribs(controller.collected_ribs())
        assert got == expected

    @given(st.integers(0, 10_000), st.integers(2, 5))
    @common_settings
    def test_sharded_equals_unsharded(self, seed, num_shards):
        spec = generate_spec(seed, PROPERTY_PROFILE)
        snapshot = build_snapshot(spec)
        expected = SimulationEngine(snapshot).run()
        engine2 = SimulationEngine(build_snapshot(spec))
        shards = make_shards(snapshot, num_shards)
        sharded = engine2.run([s.prefixes for s in shards])
        assert sharded == expected

    @given(st.integers(0, 10_000))
    @common_settings
    def test_best_paths_are_policy_consistent(self, seed):
        """Every selected *learned* route's local-pref matches the
        holder's import policy (or the 100 default)."""
        spec = generate_spec(seed, PROPERTY_PROFILE)
        routes = SimulationEngine(build_snapshot(spec)).run()
        expected_lp = {
            node.name: node.local_pref if node.local_pref is not None else 100
            for node in spec.nodes
        }
        for host, table in routes.items():
            for ecmp in table.values():
                for route in ecmp:
                    if route.from_node == host:
                        continue  # locally originated / aggregated
                    assert route.local_pref == expected_lp[host]


class TestRandomFibPredicates:
    fib_entries = st.lists(
        st.tuples(
            st.integers(0, (1 << 32) - 1),
            st.integers(0, 16),
            st.sampled_from(["fwd0", "fwd1", "recv", "drop"]),
        ),
        min_size=1,
        max_size=12,
    )

    @given(fib_entries)
    @settings(max_examples=40, deadline=None)
    def test_predicates_tile_and_respect_lpm(self, raw):
        """Compiled predicates partition the header space, and every
        concrete lookup agrees with the trie's LPM answer."""
        from repro.dataplane.predicates import compile_predicates
        from repro.config.ast import DeviceConfig

        fib = Fib("r")
        for network, length, action in raw:
            prefix = Prefix(network, length)
            if action == "recv":
                fib.add(FibEntry(prefix=prefix, action=FibAction.RECEIVE))
            elif action == "drop":
                fib.add(FibEntry(prefix=prefix, action=FibAction.DROP))
            else:
                fib.add(
                    FibEntry(
                        prefix=prefix,
                        action=FibAction.FORWARD,
                        next_hops=(NextHop(iface=action, node="x"),),
                    )
                )
        encoding = HeaderEncoding()
        engine = encoding.make_engine()
        predicates = compile_predicates(
            DeviceConfig(hostname="r"), fib, engine, encoding
        )
        union = engine.or_(predicates.receive, predicates.drop)
        pieces = [predicates.receive, predicates.drop]
        for fwd in predicates.forward.values():
            union = engine.or_(union, fwd)
            pieces.append(fwd)
        assert union == TRUE
        # pairwise disjoint
        for i in range(len(pieces)):
            for j in range(i + 1, len(pieces)):
                assert engine.and_(pieces[i], pieces[j]) == FALSE
        # spot-check LPM agreement on the entries' own network addresses
        for network, length, _action in raw:
            probe = Prefix(network, length).network
            hit = fib.lookup(probe)
            probe_bdd = encoding.value_bdd(engine, "dst", probe)
            if hit is None:
                assert engine.implies(probe_bdd, predicates.drop)
            elif hit.action is FibAction.RECEIVE:
                assert engine.implies(probe_bdd, predicates.receive)
            elif hit.action is FibAction.DROP:
                assert engine.implies(probe_bdd, predicates.drop)
            else:
                iface = hit.next_hops[0].iface
                assert engine.implies(
                    probe_bdd, predicates.forward[iface]
                )
