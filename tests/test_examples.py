"""Smoke tests: the example scripts must run end to end.

The slow, full-size scenarios (dcn_audit, dual_stack_dcn,
run_all_experiments) are exercised by the benchmarks and EXPERIMENTS.md
generation; here we run the fast examples exactly as a user would.
"""

import subprocess
import sys

import pytest

EXAMPLES = [
    ("quickstart.py", ["single-pair reachability holds: True"]),
    (
        "waypoint_firewall.py",
        ["WAYPOINT VIOLATED", "MULTIPATH INCONSISTENCY", "S2 verdict"],
    ),
    (
        "fig11_forwarding_trace.py",
        ["4 forwarding paths found", "all of them"],
    ),
    ("scale_out_study.py", ["recommendation:"]),
    (
        "link_failure_sweep.py",
        [
            "safe to lose",
            "single point of failure",
            "counterexample at epoch",
            "resident sweep verdict",
        ],
    ),
]


@pytest.mark.parametrize("script,expected", EXAMPLES)
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, f"examples/{script}", "4"]
        if script == "scale_out_study.py"
        else [sys.executable, f"examples/{script}"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, (
            f"{script} output missing {needle!r}:\n{result.stdout[-2000:]}"
        )
