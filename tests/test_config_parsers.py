"""Tests for the two vendor dialect parsers and the lexer."""

import pytest

from repro.config import (
    Action,
    ConfigSyntaxError,
    RemovePrivateAsMode,
    parse_cisco,
    parse_device,
    parse_juniper,
    sniff_dialect,
)
from repro.config.ast import (
    MatchCommunityList,
    MatchPrefixList,
    SetAsPathReplace,
    SetCommunities,
    SetLocalPref,
    community,
)
from repro.config.lexer import split_lines, tokenize_braces
from repro.net.ip import Prefix, parse_ip

CISCO_FULL = """\
hostname leaf-1
!
interface eth0
 ip address 10.0.0.1 255.255.255.254
 ip access-group FILTER in
!
interface eth1
 ip address 10.0.1.1 255.255.255.0
 shutdown
!
ip prefix-list PL-HOSTS seq 5 permit 10.0.0.0/8 le 24
ip prefix-list PL-HOSTS seq 10 deny 0.0.0.0/0 le 32
ip community-list standard CL-TAG permit 65000:100
ip as-path access-list AP-SHORT permit ^65001_
!
route-map RM-IN permit 10
 match ip address prefix-list PL-HOSTS
 set local-preference 200
 set community 65000:100 additive
route-map RM-IN deny 20
!
route-map RM-OUT permit 10
 set as-path prepend 65001 65001
!
ip access-list extended FILTER
 10 permit tcp any 10.0.1.0/24 eq 443
 20 deny ip any any
!
router bgp 65001
 bgp router-id 1.1.1.1
 maximum-paths 16
 neighbor 10.0.0.0 remote-as 65002
 neighbor 10.0.0.0 route-map RM-IN in
 neighbor 10.0.0.0 route-map RM-OUT out
 neighbor 10.0.0.0 remove-private-as
 network 10.0.1.0 mask 255.255.255.0
 aggregate-address 10.0.0.0 255.255.0.0 summary-only attribute-map RM-OUT
 advertise 0.0.0.0/0 exist 8.8.8.0/24
 redistribute connected
!
router ospf 1
 router-id 1.1.1.1
 network 10.0.0.0 0.0.255.255 area 0
 passive-interface eth1
!
ip route 192.168.0.0 255.255.0.0 Null0 tag 77
ip route 172.16.0.0 255.240.0.0 10.0.0.0
"""

JUNIPER_FULL = """\
system {
    host-name spine-7;
}
interfaces {
    et-0 {
        unit 0 {
            family {
                inet {
                    address 10.1.0.1/31;
                    filter {
                        input FW-IN;
                    }
                }
            }
        }
    }
}
routing-options {
    router-id 7.7.7.7;
    autonomous-system 65100;
    static {
        route 0.0.0.0/0 {
            next-hop 10.1.0.0;
        }
        route 192.168.0.0/16 discard;
    }
}
policy-options {
    community TAG members [ 65000:7 65000:8 ];
    prefix-list PL-LOOP {
        172.16.0.0/12;
    }
    policy-statement IMPORT {
        term one {
            from {
                prefix-list PL-LOOP;
                community TAG;
            }
            then {
                local-preference 150;
                community add TAG;
                accept;
            }
        }
        term two {
            then {
                as-path-replace;
                reject;
            }
        }
    }
}
protocols {
    bgp {
        multipath 32;
        group up {
            import IMPORT;
            neighbor 10.1.0.0 {
                peer-as 65200;
            }
            remove-private;
        }
        aggregate {
            route 10.0.0.0/8 summary-only;
        }
        network 10.1.5.0/24;
    }
    ospf {
        area 0 {
            interface et-0 {
                metric 10;
            }
        }
    }
}
firewall {
    family {
        inet {
            filter FW-IN {
                term drop-telnet {
                    from {
                        protocol tcp;
                        destination-port 23;
                    }
                    then {
                        discard;
                    }
                }
                term allow {
                    then {
                        accept;
                    }
                }
            }
        }
    }
}
"""


class TestLexer:
    def test_split_lines_skips_comments_and_blanks(self):
        lines = split_lines("! comment\n\nhostname x\n  indented arg\n")
        assert [l.words for l in lines] == [["hostname", "x"], ["indented", "arg"]]
        assert lines[1].indent == 2

    def test_line_numbers(self):
        lines = split_lines("!\nhostname x\n")
        assert lines[0].number == 2

    def test_tokenize_braces(self):
        tokens = [t for t, _ in tokenize_braces("a b { c; } # comment\n")]
        assert tokens == ["a", "b", "{", "c", ";", "}"]

    def test_tokenize_brackets(self):
        tokens = [t for t, _ in tokenize_braces("x [ 1:2 3:4 ];")]
        assert tokens == ["x", "[", "1:2", "3:4", "]", ";"]


class TestCiscoParser:
    @pytest.fixture(scope="class")
    def cfg(self):
        return parse_cisco(CISCO_FULL)

    def test_hostname_and_vsb(self, cfg):
        assert cfg.hostname == "leaf-1"
        assert cfg.behavior.vendor == "ciscoish"
        assert cfg.behavior.remove_private_as_mode is RemovePrivateAsMode.LEADING

    def test_interfaces(self, cfg):
        eth0 = cfg.interfaces["eth0"]
        assert eth0.address == parse_ip("10.0.0.1")
        assert eth0.prefix == Prefix.parse("10.0.0.0/31")
        assert eth0.acl_in == "FILTER"
        assert cfg.interfaces["eth1"].shutdown

    def test_bgp_basics(self, cfg):
        bgp = cfg.bgp
        assert bgp.asn == 65001
        assert bgp.router_id == parse_ip("1.1.1.1")
        assert bgp.maximum_paths == 16
        assert bgp.networks == [Prefix.parse("10.0.1.0/24")]
        assert bgp.redistribute == ["connected"]

    def test_neighbor(self, cfg):
        neighbor = cfg.bgp.neighbors[0]
        assert neighbor.remote_as == 65002
        assert neighbor.import_policy == "RM-IN"
        assert neighbor.export_policy == "RM-OUT"
        assert neighbor.remove_private_as

    def test_aggregate(self, cfg):
        agg = cfg.bgp.aggregates[0]
        assert agg.prefix == Prefix.parse("10.0.0.0/16")
        assert agg.summary_only
        assert agg.attribute_map == "RM-OUT"

    def test_conditional(self, cfg):
        cond = cfg.bgp.conditionals[0]
        assert cond.prefix == Prefix.parse("0.0.0.0/0")
        assert cond.watch_prefix == Prefix.parse("8.8.8.0/24")
        assert cond.when_present

    def test_prefix_list(self, cfg):
        plist = cfg.prefix_lists["PL-HOSTS"]
        assert plist.permits(Prefix.parse("10.5.0.0/16"))
        assert not plist.permits(Prefix.parse("10.5.0.0/25"))  # le 24
        assert not plist.permits(Prefix.parse("11.0.0.0/8"))

    def test_community_list(self, cfg):
        clist = cfg.community_lists["CL-TAG"]
        assert clist.permits(frozenset([community(65000, 100)]))
        assert not clist.permits(frozenset([community(65000, 101)]))

    def test_route_map_clauses(self, cfg):
        rm = cfg.route_maps["RM-IN"]
        clauses = rm.sorted_clauses()
        assert [c.seq for c in clauses] == [10, 20]
        assert clauses[0].action is Action.PERMIT
        assert isinstance(clauses[0].matches[0], MatchPrefixList)
        assert SetLocalPref(200) in clauses[0].sets
        assert clauses[1].action is Action.DENY

    def test_acl(self, cfg):
        acl = cfg.acls["FILTER"]
        lines = acl.sorted_lines()
        assert lines[0].protocol == 6
        assert lines[0].dst == Prefix.parse("10.0.1.0/24")
        assert lines[0].dst_port == (443, 443)
        assert lines[1].action is Action.DENY
        assert lines[1].src is None and lines[1].dst is None

    def test_static_routes(self, cfg):
        null_route = cfg.static_routes[0]
        assert null_route.discard and null_route.tag == 77
        via = cfg.static_routes[1]
        assert via.next_hop == parse_ip("10.0.0.0")

    def test_ospf(self, cfg):
        ospf = cfg.ospf
        assert ospf.router_id == parse_ip("1.1.1.1")
        # the network statement matched eth0 and eth1 (10.0.x)
        assert ospf.interfaces["eth0"].area == 0
        assert ospf.interfaces["eth1"].passive

    def test_validate_clean(self, cfg):
        assert cfg.validate() == []

    def test_missing_hostname_rejected(self):
        with pytest.raises(ConfigSyntaxError):
            parse_cisco("router bgp 1\n neighbor 1.2.3.4 remote-as 2\n")

    def test_unknown_statement_rejected(self):
        with pytest.raises(ConfigSyntaxError):
            parse_cisco("hostname x\nfrobnicate\n")

    def test_neighbor_without_remote_as_rejected(self):
        with pytest.raises(ConfigSyntaxError):
            parse_cisco(
                "hostname x\nrouter bgp 1\n neighbor 1.2.3.4 route-map A in\n"
            )

    def test_validate_reports_missing_references(self):
        cfg = parse_cisco(
            "hostname x\n"
            "router bgp 1\n"
            " neighbor 1.2.3.4 remote-as 2\n"
            " neighbor 1.2.3.4 route-map NOPE in\n"
        )
        problems = cfg.validate()
        assert any("NOPE" in p for p in problems)


class TestJuniperParser:
    @pytest.fixture(scope="class")
    def cfg(self):
        return parse_juniper(JUNIPER_FULL)

    def test_hostname_and_vsb(self, cfg):
        assert cfg.hostname == "spine-7"
        assert cfg.behavior.remove_private_as_mode is RemovePrivateAsMode.ALL

    def test_interface(self, cfg):
        et0 = cfg.interfaces["et-0"]
        assert et0.address == parse_ip("10.1.0.1")
        assert et0.prefix == Prefix.parse("10.1.0.0/31")
        assert et0.acl_in == "FW-IN"

    def test_bgp(self, cfg):
        bgp = cfg.bgp
        assert bgp.asn == 65100
        assert bgp.router_id == parse_ip("7.7.7.7")
        assert bgp.maximum_paths == 32
        neighbor = bgp.neighbors[0]
        assert neighbor.remote_as == 65200
        assert neighbor.import_policy == "IMPORT"
        assert neighbor.remove_private_as
        assert bgp.networks == [Prefix.parse("10.1.5.0/24")]
        agg = bgp.aggregates[0]
        assert agg.prefix == Prefix.parse("10.0.0.0/8") and agg.summary_only

    def test_static(self, cfg):
        default = cfg.static_routes[0]
        assert default.prefix == Prefix.parse("0.0.0.0/0")
        assert default.next_hop == parse_ip("10.1.0.0")
        assert cfg.static_routes[1].discard

    def test_policy_statement(self, cfg):
        rm = cfg.route_maps["IMPORT"]
        clauses = rm.sorted_clauses()
        assert len(clauses) == 2
        first = clauses[0]
        assert isinstance(first.matches[0], MatchPrefixList)
        assert isinstance(first.matches[1], MatchCommunityList)
        assert SetLocalPref(150) in first.sets
        assert any(
            isinstance(s, SetCommunities) and s.additive for s in first.sets
        )
        assert clauses[1].action is Action.DENY
        assert any(isinstance(s, SetAsPathReplace) for s in clauses[1].sets)

    def test_community_definition(self, cfg):
        clist = cfg.community_lists["TAG"]
        present = frozenset([community(65000, 7), community(65000, 8)])
        assert clist.permits(present)

    def test_firewall(self, cfg):
        acl = cfg.acls["FW-IN"]
        lines = acl.sorted_lines()
        assert lines[0].action is Action.DENY
        assert lines[0].protocol == 6
        assert lines[0].dst_port == (23, 23)
        assert lines[1].action is Action.PERMIT

    def test_ospf(self, cfg):
        assert cfg.ospf.interfaces["et-0"].cost == 10

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(ConfigSyntaxError):
            parse_juniper("system { host-name x;")

    def test_missing_hostname_rejected(self):
        with pytest.raises(ConfigSyntaxError):
            parse_juniper("interfaces { }")

    def test_neighbor_without_peer_as_rejected(self):
        with pytest.raises(ConfigSyntaxError):
            parse_juniper(
                "system { host-name x; }\n"
                "protocols { bgp { group g { neighbor 1.2.3.4 { } } } }"
            )


class TestDialectSniffing:
    def test_sniff_cisco(self):
        assert sniff_dialect(CISCO_FULL) == "ciscoish"

    def test_sniff_juniper(self):
        assert sniff_dialect(JUNIPER_FULL) == "juniperish"

    def test_sniff_skips_comments(self):
        assert sniff_dialect("! note\nhostname x\n") == "ciscoish"
        assert sniff_dialect("# note\nsystem { }\n") == "juniperish"

    def test_parse_device_auto(self):
        assert parse_device(CISCO_FULL).hostname == "leaf-1"
        assert parse_device(JUNIPER_FULL).hostname == "spine-7"

    def test_parse_device_unknown_dialect(self):
        with pytest.raises(ConfigSyntaxError):
            parse_device("hostname x\n", dialect="nortel")


ARISTA_FULL = """\
hostname tor-42
!
interface Ethernet1
 ip address 10.0.0.1 255.255.255.254
!
ip community-list expanded CL-X permit 65000:5
!
router bgp 65042
 maximum-paths 8 ecmp 64
 neighbor 10.0.0.0 remote-as 65100
 neighbor 10.0.0.0 remove-private-as all
 network 10.42.0.0 mask 255.255.255.0
!
"""


class TestAristaParser:
    @pytest.fixture(scope="class")
    def cfg(self):
        from repro.config.arista import parse_arista

        return parse_arista(ARISTA_FULL)

    def test_vendor_and_vsb(self, cfg):
        assert cfg.behavior.vendor == "aristaish"
        assert cfg.behavior.remove_private_as_mode is RemovePrivateAsMode.ALL

    def test_ecmp_argument_wins(self, cfg):
        # `maximum-paths 8 ecmp 64` -> the ECMP limit is 64
        assert cfg.bgp.maximum_paths == 64

    def test_remove_private_as_all_spelling(self, cfg):
        assert cfg.bgp.neighbors[0].remove_private_as

    def test_expanded_community_list_normalized(self, cfg):
        assert "CL-X" in cfg.community_lists

    def test_plain_cisco_syntax_accepted(self):
        from repro.config.arista import parse_arista

        cfg = parse_arista(CISCO_FULL)
        assert cfg.hostname == "leaf-1"
        assert cfg.behavior.vendor == "aristaish"

    def test_loader_eos_extension(self, tmp_path):
        import os

        from repro.config.loader import load_snapshot_dir

        os.makedirs(tmp_path / "configs")
        with open(tmp_path / "configs" / "tor.eos", "w") as handle:
            handle.write(ARISTA_FULL)
        snapshot = load_snapshot_dir(str(tmp_path))
        assert snapshot.configs["tor-42"].behavior.vendor == "aristaish"

    def test_parse_device_dialect(self):
        from repro.config.loader import parse_device

        cfg = parse_device(ARISTA_FULL, dialect="aristaish")
        assert cfg.bgp.asn == 65042

    def test_vsb_differs_from_ciscoish(self, cfg):
        from repro.config.policy import apply_remove_private_as

        path = (3000, 64601)
        arista = apply_remove_private_as(
            path, cfg.behavior.remove_private_as_mode
        )
        cisco = apply_remove_private_as(
            path, RemovePrivateAsMode.LEADING
        )
        assert arista == (3000,) and cisco == (3000, 64601)


class TestAclPortParsing:
    """Source-port matches must survive parsing in both dialects (they
    used to be dropped: only the port after the destination was read)."""

    def test_cisco_source_port_eq(self):
        cfg = parse_cisco(
            "hostname r1\n"
            "ip access-list extended PORTS\n"
            " 10 permit tcp any eq 179 10.0.0.0/8 range 8000 8100\n"
            " 20 deny udp 10.2.0.0/16 range 1024 2048 any\n"
        )
        lines = cfg.acls["PORTS"].sorted_lines()
        assert lines[0].src is None
        assert lines[0].src_port == (179, 179)
        assert lines[0].dst == Prefix.parse("10.0.0.0/8")
        assert lines[0].dst_port == (8000, 8100)
        assert lines[1].src == Prefix.parse("10.2.0.0/16")
        assert lines[1].src_port == (1024, 2048)
        assert lines[1].dst is None and lines[1].dst_port is None

    def test_cisco_dst_port_only_unchanged(self):
        cfg = parse_cisco(
            "hostname r1\n"
            "ip access-list extended WEB\n"
            " 10 permit tcp any any eq 443\n"
        )
        line = cfg.acls["WEB"].sorted_lines()[0]
        assert line.src_port is None
        assert line.dst_port == (443, 443)

    def test_juniper_source_port(self):
        cfg = parse_juniper(
            "system {\n"
            "    host-name j1;\n"
            "}\n"
            "firewall {\n"
            "    family {\n"
            "        inet {\n"
            "            filter F {\n"
            "                term t1 {\n"
            "                    from {\n"
            "                        protocol tcp;\n"
            "                        source-port 1024-2048;\n"
            "                        destination-port 443;\n"
            "                    }\n"
            "                    then {\n"
            "                        accept;\n"
            "                    }\n"
            "                }\n"
            "            }\n"
            "        }\n"
            "    }\n"
            "}\n"
        )
        line = cfg.acls["F"].sorted_lines()[0]
        assert line.src_port == (1024, 2048)
        assert line.dst_port == (443, 443)
