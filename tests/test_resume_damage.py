"""Warm boot over a damaged store degrades to a cold start, typed.

The two-phase commit (manifest, then ``EPOCH`` tag) means a store is
trustworthy only when the pair agrees and both parse.  Each kind of
damage must surface as a *typed* error — :class:`CorruptShardError` for
unparsable files, :class:`EpochMismatchError` for a torn commit — and
:class:`VerifierSession` must respond by falling back to a cold start
(recording why), never by serving stale or torn state.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.config.loader import snapshot_from_texts
from repro.dataplane.queries import Query
from repro.dist.controller import S2Controller, S2Options
from repro.dist.storage import (
    CorruptShardError,
    EpochMismatchError,
    RouteStore,
)
from repro.net.fattree import FatTreeSpec, render_configs
from repro.serve import ConfigTextDelta, VerifierSession

from tests.conftest import normalize_ribs

NUM_WORKERS = 2
NUM_SHARDS = 4


def _options(store_dir, **overrides) -> S2Options:
    defaults = dict(
        num_workers=NUM_WORKERS,
        num_shards=NUM_SHARDS,
        store_dir=str(store_dir),
        checkpoint=True,
    )
    defaults.update(overrides)
    return S2Options(**defaults)


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    """A committed store at epoch 1, plus the snapshot it describes."""
    texts = render_configs(FatTreeSpec(k=4))
    snapshot = snapshot_from_texts(texts, name="ft4-resume")
    host = sorted(
        h
        for h, (_d, t) in texts.items()
        if any(
            line.strip().startswith("network ")
            for line in t.splitlines()
        )
    )[0]
    dialect, text = texts[host]
    lines = text.splitlines()
    last_net = max(
        i
        for i, line in enumerate(lines)
        if line.strip().startswith("network ")
    )
    lines.insert(last_net + 1, " network 203.0.113.0 mask 255.255.255.0")
    delta = ConfigTextDelta(
        hostname=host, text="\n".join(lines), dialect=dialect
    )
    store_dir = tmp_path_factory.mktemp("seed") / "store"
    with VerifierSession(snapshot, _options(store_dir)) as session:
        result = session.apply_delta(delta, timeout=300)
        assert result.epoch == 1
        final_snapshot = session.snapshot
        view = session.reachability()
        expected = (normalize_ribs(view.ribs), view.pairs)
    return str(store_dir), final_snapshot, expected


@pytest.fixture
def store_copy(seeded, tmp_path):
    """A private copy of the committed store, safe to damage."""
    store_dir, final_snapshot, expected = seeded
    copy = tmp_path / "store"
    shutil.copytree(store_dir, copy)
    return str(copy), final_snapshot, expected


def _boot(store_dir, snapshot, **overrides) -> VerifierSession:
    return VerifierSession(snapshot, _options(store_dir, **overrides))


def _assert_serves_expected(session, expected) -> None:
    ribs, pairs = expected
    view = session.reachability()
    assert normalize_ribs(view.ribs) == ribs
    assert view.pairs == pairs


# -- the happy path ---------------------------------------------------------


def test_warm_boot_adopts_the_committed_epoch(store_copy):
    store_dir, snapshot, expected = store_copy
    with _boot(store_dir, snapshot) as session:
        assert session.warm_booted
        assert session.boot_fallback is None
        assert session.epoch == 1
        assert session.health()["warm_boot"]
        _assert_serves_expected(session, expected)


# -- typed damage at the storage layer --------------------------------------


def test_corrupt_manifest_raises_typed_error(store_copy):
    store_dir, _snapshot, _expected = store_copy
    store = RouteStore(store_dir)
    with open(store.manifest_path, "w", encoding="utf-8") as handle:
        handle.write('{"truncated": ')
    with pytest.raises(CorruptShardError):
        store.read_manifest()


def test_corrupt_epoch_tag_raises_typed_error(store_copy):
    store_dir, _snapshot, _expected = store_copy
    store = RouteStore(store_dir)
    with open(store.epoch_tag_path, "w", encoding="utf-8") as handle:
        handle.write("not json at all")
    with pytest.raises(CorruptShardError):
        store.read_epoch_tag()
    with open(store.epoch_tag_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"epoch": "one"}))
    with pytest.raises(CorruptShardError):
        store.read_epoch_tag()


# -- the session falls back to a cold start ---------------------------------


def test_corrupt_manifest_falls_back_to_cold_start(store_copy):
    store_dir, snapshot, expected = store_copy
    store = RouteStore(store_dir)
    with open(store.manifest_path, "w", encoding="utf-8") as handle:
        handle.write("{[garbage")
    with _boot(store_dir, snapshot) as session:
        assert not session.warm_booted
        assert "CorruptShardError" in session.boot_fallback
        assert session.health()["boot_fallback"] == session.boot_fallback
        assert session.epoch == 0  # a fresh history, not the old one
        _assert_serves_expected(session, expected)


def test_epoch_tag_mismatch_falls_back_to_cold_start(store_copy):
    """A torn commit: the manifest advanced but the tag did not (or
    vice versa).  The RIB files cannot be trusted."""
    store_dir, snapshot, expected = store_copy
    RouteStore(store_dir).write_epoch_tag(99)
    with _boot(store_dir, snapshot) as session:
        assert not session.warm_booted
        assert "EpochMismatchError" in session.boot_fallback
        _assert_serves_expected(session, expected)


def test_missing_epoch_tag_falls_back_to_cold_start(store_copy):
    store_dir, snapshot, expected = store_copy
    os.unlink(RouteStore(store_dir).epoch_tag_path)
    with _boot(store_dir, snapshot) as session:
        assert not session.warm_booted
        assert "EpochMismatchError" in session.boot_fallback
        _assert_serves_expected(session, expected)


def test_incompatible_options_fall_back_to_cold_start(store_copy):
    store_dir, snapshot, expected = store_copy
    with _boot(store_dir, snapshot, num_workers=3) as session:
        assert not session.warm_booted
        assert session.boot_fallback is not None
        _assert_serves_expected(session, expected)


def test_empty_store_is_a_plain_cold_start(tmp_path, store_copy):
    _store, snapshot, expected = store_copy
    with _boot(tmp_path / "fresh", snapshot) as session:
        assert not session.warm_booted
        assert session.boot_fallback is None  # nothing there ≠ damage
        _assert_serves_expected(session, expected)
