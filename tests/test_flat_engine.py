"""Flat-kernel specifics: table growth, packed-id limits, GC compaction,
the direct-mapped op cache, and counters.  Semantic equivalence with the
dict kernel lives in test_kernel_differential.py; these tests pin the
flat engine's own mechanics.
"""

import pytest

from repro.bdd.engine import FALSE, OP_OR, TRUE, BddOverflowError
from repro.bdd.flat import MAX_FLAT_NODE_LIMIT, FlatBddEngine
from repro.bdd.serialize import deserialize, serialize
from repro.bdd.engine import BddEngine

N_VARS = 16


@pytest.fixture
def engine():
    return FlatBddEngine(N_VARS)


def test_kernel_tag(engine):
    assert engine.kernel == "flat"
    assert BddEngine(N_VARS).kernel == "dict"


def test_node_limit_must_fit_packed_ids():
    FlatBddEngine(N_VARS, node_limit=MAX_FLAT_NODE_LIMIT)  # boundary ok
    with pytest.raises(ValueError, match="packs node ids"):
        FlatBddEngine(N_VARS, node_limit=MAX_FLAT_NODE_LIMIT + 1)


def test_node_limit_overflow_still_raises():
    tiny = FlatBddEngine(N_VARS, node_limit=8)
    with pytest.raises(BddOverflowError):
        u = TRUE
        for i in range(N_VARS):
            u = tiny.and_(u, tiny.var(i))


def test_table_grows_past_initial_capacity():
    engine = FlatBddEngine(40)
    u = TRUE
    for i in range(40):
        u = engine.and_(u, engine.var(i) if i % 2 else engine.nvar(i))
        u = engine.or_(u, engine.cube({i: True, (i + 7) % 40: False}))
    assert engine.node_count > 1024  # past the preallocated arrays
    assert len(engine._var) == len(engine._low) == len(engine._high)
    assert engine.node_count <= len(engine._var)


def test_cube_validates_index(engine):
    with pytest.raises(ValueError, match="out of range"):
        engine.cube({N_VARS: True})
    with pytest.raises(ValueError, match="out of range"):
        engine.cube({-1: False})


def test_gc_compacts_in_place(engine):
    keep = engine.cube({0: True, 5: False, 9: True})
    engine.add_root(keep)
    for i in range(10):
        engine.xor(engine.var(i), engine.var((i + 3) % N_VARS))
    before = engine.node_count
    fp_before = engine.sat_count(keep)
    remap = engine.collect_garbage()
    keep = remap[keep]
    assert engine.node_count < before
    assert engine.sat_count(keep) == fp_before
    # Children-before-parents invariant survives compaction.
    for node in range(2, engine.node_count):
        assert engine.low_of(node) < node
        assert engine.high_of(node) < node
    # The rebuilt unique table dedups against compacted nodes.
    assert engine.cube({0: True, 5: False, 9: True}) == keep


def test_gc_then_ops_stay_consistent(engine):
    a = engine.cube({1: True, 2: True})
    b = engine.cube({3: False})
    engine.add_root(a)
    engine.add_root(b)
    remap = engine.collect_garbage()
    a, b = remap[a], remap[b]
    union = engine.or_(a, b)
    assert engine.implies(a, union)
    assert engine.implies(b, union)


def test_direct_mapped_cache_is_bounded():
    engine = FlatBddEngine(N_VARS, cache_limit=64)
    for i in range(N_VARS):
        for j in range(N_VARS):
            engine.apply(OP_OR, engine.var(i), engine.nvar(j))
    # The op cache is a fixed-size direct-mapped array: filled slots can
    # never exceed its capacity no matter how many distinct ops ran.
    capacity = engine._cmask + 1
    assert engine._cache_filled <= capacity
    counters = engine.counters()
    assert counters["cache_entries"] <= capacity + len(engine._ite_memo)


def test_counters_expose_flat_gauges(engine):
    engine.and_(engine.var(0), engine.var(1))
    counters = engine.counters()
    assert counters["kernel_flat"] == 1.0
    assert counters["cache_capacity"] >= engine.cache_limit
    assert counters["node_capacity"] >= engine.node_count
    for key in ("node_count", "cache_hits", "cache_misses", "gc_runs"):
        assert key in counters


def test_serialization_crosses_kernels(engine):
    u = engine.or_(
        engine.cube({0: True, 4: False}), engine.cube({2: True})
    )
    payload = serialize(engine, u)
    other = BddEngine(N_VARS)
    v = deserialize(other, payload)
    assert other.sat_count(v) == engine.sat_count(u)
    back = deserialize(engine, serialize(other, v))
    assert back == u  # hash-consing makes the roundtrip exact


def test_ite_memo_is_bounded():
    engine = FlatBddEngine(N_VARS, cache_limit=32)
    for i in range(N_VARS):
        for j in range(N_VARS):
            engine.ite(
                engine.var(i), engine.var(j), engine.nvar((i + j) % N_VARS)
            )
    assert len(engine._ite_memo) <= engine.cache_limit
