"""Tests for the monolithic fixed-point engine: stats, convergence
behaviour, and failure modes (including genuine BGP oscillation)."""

import pytest

from repro.config.loader import make_snapshot, parse_device
from repro.net.fattree import build_fattree
from repro.net.ip import Prefix
from repro.routing.engine import (
    ConvergenceError,
    SimulationEngine,
    collect_network_prefixes,
)


def build(*texts):
    configs = {}
    for text in texts:
        config = parse_device(text, "ciscoish")
        configs[config.hostname] = config
    return make_snapshot(configs)


def disagree_gadget():
    """The classic BGP DISAGREE gadget.

    o originates P.  a and b each prefer the route *via the other peer*
    (local-pref 200) over the direct route from o (default 100).  Two
    stable solutions exist; asynchronous schedules settle into one of
    them (the §7 "multiple converged states" caveat).
    """
    o = (
        "hostname o\n"
        "interface e0\n ip address 10.0.0.0 255.255.255.254\n"
        "interface e1\n ip address 10.0.0.2 255.255.255.254\n"
        "router bgp 65000\n"
        " network 10.9.0.0 mask 255.255.255.0\n"
        " neighbor 10.0.0.1 remote-as 65001\n"
        " neighbor 10.0.0.3 remote-as 65002\n"
    )
    prefer_peer = (
        "ip prefix-list P seq 5 permit 10.9.0.0/24\n"
        "route-map PREFER-PEER permit 10\n"
        " match ip address prefix-list P\n"
        " set local-preference 200\n"
        "route-map PREFER-PEER permit 20\n"
    )
    a = (
        "hostname a\n"
        "interface e0\n ip address 10.0.0.1 255.255.255.254\n"
        "interface e1\n ip address 10.0.0.4 255.255.255.254\n"
        + prefer_peer
        + "router bgp 65001\n"
        " neighbor 10.0.0.0 remote-as 65000\n"
        " neighbor 10.0.0.5 remote-as 65002\n"
        " neighbor 10.0.0.5 route-map PREFER-PEER in\n"
    )
    b = (
        "hostname b\n"
        "interface e0\n ip address 10.0.0.3 255.255.255.254\n"
        "interface e1\n ip address 10.0.0.5 255.255.255.254\n"
        + prefer_peer
        + "router bgp 65002\n"
        " neighbor 10.0.0.2 remote-as 65000\n"
        " neighbor 10.0.0.4 remote-as 65001\n"
        " neighbor 10.0.0.4 route-map PREFER-PEER in\n"
    )
    return build(o, a, b)


def bad_gadget():
    """Griffin's BAD GADGET: guaranteed BGP divergence.

    o (center) originates P; the ring a→b→c→a each prefers the route
    learned from its ring *successor* (local-pref 200) over the direct
    route from o.  No stable solution exists, so route computation
    oscillates under every schedule — exercising the §7 limitation that
    S2 cannot terminate on non-converging networks.
    """
    o = (
        "hostname o\n"
        "interface e0\n ip address 10.0.0.0 255.255.255.254\n"
        "interface e1\n ip address 10.0.0.2 255.255.255.254\n"
        "interface e2\n ip address 10.0.0.4 255.255.255.254\n"
        "router bgp 65000\n"
        " network 10.9.0.0 mask 255.255.255.0\n"
        " neighbor 10.0.0.1 remote-as 65001\n"
        " neighbor 10.0.0.3 remote-as 65002\n"
        " neighbor 10.0.0.5 remote-as 65003\n"
    )
    prefer = (
        "ip prefix-list P seq 5 permit 10.9.0.0/24\n"
        "route-map PREFER permit 10\n"
        " match ip address prefix-list P\n"
        " set local-preference 200\n"
        "route-map PREFER permit 20\n"
    )
    a = (
        "hostname a\n"
        "interface e0\n ip address 10.0.0.1 255.255.255.254\n"
        "interface e1\n ip address 10.0.0.6 255.255.255.254\n"
        "interface e2\n ip address 10.0.0.11 255.255.255.254\n"
        + prefer
        + "router bgp 65001\n"
        " neighbor 10.0.0.0 remote-as 65000\n"
        " neighbor 10.0.0.7 remote-as 65002\n"
        " neighbor 10.0.0.7 route-map PREFER in\n"
        " neighbor 10.0.0.10 remote-as 65003\n"
    )
    b = (
        "hostname b\n"
        "interface e0\n ip address 10.0.0.3 255.255.255.254\n"
        "interface e1\n ip address 10.0.0.7 255.255.255.254\n"
        "interface e2\n ip address 10.0.0.8 255.255.255.254\n"
        + prefer
        + "router bgp 65002\n"
        " neighbor 10.0.0.2 remote-as 65000\n"
        " neighbor 10.0.0.9 remote-as 65003\n"
        " neighbor 10.0.0.9 route-map PREFER in\n"
        " neighbor 10.0.0.6 remote-as 65001\n"
    )
    c = (
        "hostname c\n"
        "interface e0\n ip address 10.0.0.5 255.255.255.254\n"
        "interface e1\n ip address 10.0.0.9 255.255.255.254\n"
        "interface e2\n ip address 10.0.0.10 255.255.255.254\n"
        + prefer
        + "router bgp 65003\n"
        " neighbor 10.0.0.4 remote-as 65000\n"
        " neighbor 10.0.0.11 remote-as 65001\n"
        " neighbor 10.0.0.11 route-map PREFER in\n"
        " neighbor 10.0.0.8 remote-as 65002\n"
    )
    return build(o, a, b, c)


class TestStats:
    def test_round_and_route_counters(self, fattree4):
        engine = SimulationEngine(fattree4)
        engine.run()
        stats = engine.stats
        assert stats.bgp_rounds >= 3
        assert stats.shards_run == 1
        assert stats.total_selected_routes == 256
        assert stats.peak_candidate_routes > 256  # candidates > selected
        assert stats.work_units > 0

    def test_sharded_run_counts_shards(self, fattree4):
        from repro.dist.sharding import make_shards

        engine = SimulationEngine(fattree4)
        shards = make_shards(fattree4, 4)
        engine.run([s.prefixes for s in shards])
        assert engine.stats.shards_run == 4

    def test_main_routes_include_connected(self, fattree4):
        engine = SimulationEngine(fattree4)
        engine.run()
        routes = engine.main_routes()
        # every switch has a connected route per interface
        assert all(len(rs) > 0 for rs in routes.values())

    def test_local_prefixes_exposed(self, fattree4):
        engine = SimulationEngine(fattree4)
        locals_ = engine.local_prefixes()
        assert Prefix.parse("10.0.0.0/24") in locals_["edge-0-0"]
        assert locals_["core-0"] == frozenset()


class TestConvergenceFailure:
    def test_disagree_gadget_settles_into_one_solution(self):
        """DISAGREE has two stable solutions; the sequential engine's
        asynchronous schedule settles into one (§7's multiple-converged-
        states caveat — S2 converges 'to one such state')."""
        snapshot = disagree_gadget()
        engine = SimulationEngine(snapshot, max_rounds=30)
        routes = engine.run()
        P = Prefix.parse("10.9.0.0/24")
        prefs = sorted(
            routes[h][P][0].local_pref for h in ("a", "b")
        )
        # exactly one of the two got its preferred (peer) path
        assert prefs == [100, 200]

    def test_bad_gadget_raises(self):
        snapshot = bad_gadget()
        engine = SimulationEngine(snapshot, max_rounds=40)
        with pytest.raises(ConvergenceError):
            engine.run()

    def test_distributed_bad_gadget_raises_too(self):
        from repro.dist.controller import S2Controller, S2Options

        snapshot = bad_gadget()
        with S2Controller(
            snapshot, S2Options(num_workers=2, max_rounds=40)
        ) as controller:
            with pytest.raises(ConvergenceError):
                controller.run_control_plane()

    def test_round_budget_respected(self, fattree4):
        # an absurdly small budget trips even on a healthy network
        engine = SimulationEngine(fattree4, max_rounds=1)
        with pytest.raises(ConvergenceError):
            engine.run()


class TestPrefixCollection:
    def test_fattree_counts(self, fattree4):
        assert len(collect_network_prefixes(fattree4)) == 8

    def test_multi_prefix_edges(self):
        snapshot = build_fattree(4, prefixes_per_edge=3)
        assert len(collect_network_prefixes(snapshot)) == 24

    def test_includes_conditional_and_aggregate_prefixes(self, dcn1):
        prefixes = collect_network_prefixes(dcn1)
        assert Prefix.parse("0.0.0.0/0") in prefixes
        assert Prefix.parse("10.3.0.0/16") in prefixes

    def test_includes_redistributed_static(self):
        snapshot = build(
            "hostname r\n"
            "interface e0\n ip address 10.0.0.0 255.255.255.254\n"
            "ip route 192.168.0.0 255.255.0.0 Null0\n"
            "router bgp 65001\n"
            " neighbor 10.0.0.1 remote-as 65002\n"
            " redistribute static\n"
        )
        assert Prefix.parse("192.168.0.0/16") in collect_network_prefixes(
            snapshot
        )
