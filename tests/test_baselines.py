"""Tests for the Batfish and Bonsai baseline verifiers."""

import pytest

from tests.conftest import normalize_ribs
from repro.baselines.batfish import BatfishVerifier
from repro.baselines.bonsai import (
    BonsaiTimeout,
    BonsaiVerifier,
    CompressionError,
)
from repro.dataplane.queries import Query
from repro.dist.resources import SimulatedOOM
from repro.net.fattree import build_fattree
from repro.net.ip import Prefix


class TestBatfish:
    def test_routes_match_reference_engine(self, fattree4, fattree4_sim):
        _, expected = fattree4_sim
        verifier = BatfishVerifier(fattree4, enforce_memory=False)
        got = verifier.run_control_plane()
        assert normalize_ribs(got) == normalize_ribs(expected)

    def test_sharded_routes_match_unsharded(self, fattree4, fattree4_sim):
        _, expected = fattree4_sim
        verifier = BatfishVerifier(
            fattree4, num_shards=4, enforce_memory=False
        )
        got = verifier.run_control_plane()
        assert normalize_ribs(got) == normalize_ribs(expected)
        assert verifier.stats.shards_run == 4

    def test_oom_at_tiny_capacity(self, fattree4):
        verifier = BatfishVerifier(fattree4, capacity=1)
        with pytest.raises(SimulatedOOM):
            verifier.run_control_plane()
        assert verifier.resources.oom

    def test_sharding_lowers_cp_peak(self, fattree4):
        unsharded = BatfishVerifier(fattree4, enforce_memory=False)
        unsharded.run_control_plane()
        sharded = BatfishVerifier(
            fattree4, num_shards=8, enforce_memory=False
        )
        sharded.run_control_plane()
        assert sharded.resources.peak_bytes < unsharded.resources.peak_bytes

    def test_all_pair_reachability(self, fattree4):
        verifier = BatfishVerifier(fattree4, enforce_memory=False)
        result = verifier.all_pair_reachability()
        assert len(result.pairs()) == 64

    def test_stats_populated(self, fattree4):
        verifier = BatfishVerifier(fattree4, enforce_memory=False)
        verifier.all_pair_reachability()
        stats = verifier.stats
        assert stats.bgp_rounds > 0
        assert stats.cp_modeled_time > 0
        assert stats.dp_predicate_modeled_time > 0
        assert stats.dp_forward_modeled_time > 0
        assert stats.modeled_total == pytest.approx(
            stats.cp_modeled_time
            + stats.dp_predicate_modeled_time
            + stats.dp_forward_modeled_time
        )

    def test_total_route_count(self, fattree4):
        verifier = BatfishVerifier(fattree4, enforce_memory=False)
        assert verifier.total_route_count() == 256

    def test_run_control_plane_cached(self, fattree4):
        verifier = BatfishVerifier(fattree4, enforce_memory=False)
        first = verifier.run_control_plane()
        rounds = verifier.stats.bgp_rounds
        second = verifier.run_control_plane()
        assert first is second
        assert verifier.stats.bgp_rounds == rounds


class TestBonsai:
    def test_quotient_has_six_distinct_nodes(self, fattree4):
        verifier = BonsaiVerifier(fattree4)
        classes = verifier.compress("edge-1-0")
        members = classes.members()
        assert len(set(members)) == 6
        assert classes.dest_edge == "edge-1-0"
        assert classes.same_pod_agg.startswith("agg-1-")
        assert classes.same_pod_edge.startswith("edge-1-")
        assert classes.core.startswith("core-")
        assert not classes.other_pod_agg.startswith("agg-1-")

    def test_quotient_wiring_consistent_with_core(self, fattree4):
        """The other-pod agg must attach to the chosen core."""
        verifier = BonsaiVerifier(fattree4)
        classes = verifier.compress("edge-0-1")
        neighbors = fattree4.topology.neighbors(classes.core)
        assert classes.same_pod_agg in neighbors
        assert classes.other_pod_agg in neighbors

    def test_all_destinations_reachable_on_clean_fattree(self, fattree4):
        verifier = BonsaiVerifier(fattree4)
        results = verifier.check_all_destinations()
        assert len(results) == 8
        assert all(results.values())
        assert verifier.stats.destinations_checked == 8

    def test_compress_rejects_non_edge(self, fattree4):
        verifier = BonsaiVerifier(fattree4)
        with pytest.raises(CompressionError):
            verifier.compress("core-0")

    def test_requires_fattree(self, dcn1):
        with pytest.raises(CompressionError):
            BonsaiVerifier(dcn1)

    def test_k2_has_no_quotient(self):
        verifier = BonsaiVerifier(build_fattree(2))
        with pytest.raises(CompressionError):
            verifier.compress("edge-0-0")

    def test_timeout_budget(self, fattree4):
        verifier = BonsaiVerifier(fattree4, time_budget=1.0)
        with pytest.raises(BonsaiTimeout):
            verifier.check_all_destinations()

    def test_cost_grows_with_size(self):
        small = BonsaiVerifier(build_fattree(4))
        small.check_destination("edge-0-0", Prefix.parse("10.0.0.0/24"))
        large = BonsaiVerifier(build_fattree(6))
        large.check_destination("edge-0-0", Prefix.parse("10.0.0.0/24"))
        assert (
            large.stats.compression_modeled_time
            > small.stats.compression_modeled_time
        )

    def test_memory_stays_flat_across_sizes(self):
        small = BonsaiVerifier(build_fattree(4))
        small.check_destination("edge-0-0", Prefix.parse("10.0.0.0/24"))
        large = BonsaiVerifier(build_fattree(6))
        large.check_destination("edge-0-0", Prefix.parse("10.0.0.0/24"))
        # 6-node quotient regardless of k: peaks within a few percent
        assert large.resources.peak_bytes <= small.resources.peak_bytes * 1.1
