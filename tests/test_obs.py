"""Tests for the observability layer (``repro.obs``).

Covers the tracer's span nesting and no-op guard, metrics percentiles,
shard merging (including torn lines and respawned-worker incarnations),
the traced process-runtime pipeline with cross-process RPC stitching,
and the ``repro report`` CLI round-trip.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.dist.controller import S2Controller, S2Options
from repro.obs.merge import (
    chrome_events,
    merge_shards,
    read_shard,
    validate_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import load_spans, phase_breakdown, render_report
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    SCHEMA_VERSION,
    Tracer,
    stopwatch,
)


class FakeClock:
    """A deterministic monotonically advancing clock."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_span_nesting_records_parent_ids(self):
        tracer = Tracer(process="t", clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("mid") as mid:
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        names = [r.name for r in tracer.records]
        # spans are recorded at *exit*: innermost first
        assert names == ["inner", "mid", "sibling", "outer"]
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].parent_id is None
        assert by_name["mid"].parent_id == outer.span_id
        assert by_name["inner"].parent_id == mid.span_id
        assert by_name["sibling"].parent_id == outer.span_id

    def test_span_timing_and_attrs(self):
        tracer = Tracer(process="t", clock=FakeClock(step=2.0))
        with tracer.span("work", category="cpo", shard=3) as span:
            span.set(rounds=7)
        record = tracer.records[0]
        assert record.duration == pytest.approx(2.0)
        assert record.category == "cpo"
        assert record.attrs == {"shard": 3, "rounds": 7}

    def test_instant_marker_inherits_parent(self):
        tracer = Tracer(process="t", clock=FakeClock())
        with tracer.span("outer") as outer:
            tracer.instant("fault.injected", kind="crash")
        marker = next(r for r in tracer.records if r.duration == 0.0)
        assert marker.name == "fault.injected"
        assert marker.parent_id == outer.span_id
        assert marker.attrs == {"kind": "crash"}

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(process="t", enabled=False)
        span = tracer.span("anything", key="value")
        assert span is NULL_SPAN
        with span as entered:
            entered.set(more="attrs")
        tracer.instant("nothing")
        assert tracer.records == []

    def test_null_tracer_shared_singletons(self):
        assert NULL_TRACER.span("x") is NULL_SPAN
        assert NULL_TRACER.span("y") is NULL_SPAN
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.records == []

    def test_sink_writes_meta_then_flushed_spans(self, tmp_path):
        path = str(tmp_path / "shard.jsonl")
        tracer = Tracer(process="worker0", sink=path, incarnation=2)
        with tracer.span("a"):
            pass
        # flushed per span: readable before finish()
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
        ]
        assert lines[0]["type"] == "meta"
        assert lines[0]["schema"] == SCHEMA_VERSION
        assert lines[0]["process"] == "worker0"
        assert lines[0]["incarnation"] == 2
        assert lines[1]["type"] == "span"
        assert lines[1]["name"] == "a"
        tracer.finish()
        tracer.finish()  # idempotent

    def test_export_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(process="t", clock=FakeClock())
        with tracer.span("only"):
            pass
        path = str(tmp_path / "out.jsonl")
        assert tracer.export_jsonl(path) == 1
        meta, records = read_shard(path)
        assert meta["process"] == "t"
        assert [r["name"] for r in records] == ["only"]


class TestStopwatch:
    def test_measures_block(self):
        clock = FakeClock(step=1.0)
        with stopwatch(clock=clock) as timer:
            pass
        assert timer.seconds == pytest.approx(1.0)
        # stays frozen after exit
        assert timer.seconds == pytest.approx(1.0)

    def test_reads_live_without_with(self):
        clock = FakeClock(step=1.0)
        timer = stopwatch(clock=clock)
        assert timer.seconds == pytest.approx(1.0)


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        gauge = registry.gauge("g")
        gauge.set(10.0)
        gauge.set(3.0)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == {"value": 3.0, "high_water": 10.0}

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(95) == pytest.approx(95.05)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_empty_histogram(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.percentile(99) == 0.0
        assert hist.summary() == {"count": 0}

    def test_reservoir_sampling_is_unbiased(self):
        """Audit of the Algorithm-R indexing in ``Histogram.observe``:
        over a 50k-observation stream the reservoir's quantiles must
        track the exact quantiles of the full stream.  An off-by-one in
        the replacement draw (``randrange`` over the pre-increment
        count, or an ``n-1`` denominator) skews retention toward late
        arrivals; on a sorted ramp that shifts every quantile, which
        this tolerance catches.
        """
        import random as _random

        registry = MetricsRegistry()
        hist = registry.histogram("reservoir-audit")
        rng = _random.Random(0xA1B2)
        # A sorted ramp is the adversarial stream for reservoir bias:
        # arrival order correlates perfectly with value, so any
        # preference for early/late observations shifts the quantiles.
        stream = [float(i) for i in range(50_000)]
        exact = sorted(stream)
        order = list(stream)
        rng.shuffle(order)  # one shuffled pass too: both must hold
        for passes, values in (("sorted", stream), ("shuffled", order)):
            hist = registry.histogram(f"reservoir-{passes}")
            for value in values:
                hist.observe(value)
            assert hist.count == len(values)
            assert hist.sampled
            n = len(exact)
            for p in (10, 25, 50, 75, 90, 99):
                got = hist.percentile(p)
                want = exact[min(n - 1, int(round(p / 100 * (n - 1))))]
                # Reservoir of RESERVOIR_SIZE samples: the standard
                # error of an order statistic at 50k/1k is a few
                # percentile points; 5 points of slack is ~5 sigma.
                assert abs(got - want) <= 0.05 * n, (
                    f"{passes} stream p{p}: reservoir {got} vs "
                    f"exact {want}"
                )
            # min/max/mean/sum are tracked exactly, outside the sample.
            summary = hist.summary()
            assert summary["min"] == 0.0
            assert summary["max"] == float(n - 1)
            assert summary["mean"] == pytest.approx((n - 1) / 2.0)

    def test_write_json_with_extra(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = str(tmp_path / "metrics.json")
        registry.write_json(path, extra={"runtime": "process"})
        payload = json.load(open(path, encoding="utf-8"))
        assert payload["counters"]["c"] == 1
        assert payload["runtime"] == "process"


class TestMerge:
    def _shard(self, tmp_path, filename, process, incarnation, spans):
        tracer = Tracer(
            process=process,
            sink=str(tmp_path / filename),
            incarnation=incarnation,
            clock=FakeClock(),
        )
        for name, kwargs in spans:
            with tracer.span(name, **kwargs):
                pass
        tracer.finish()

    def test_merge_tolerates_torn_final_line(self, tmp_path):
        self._shard(tmp_path, "worker0.0.jsonl", "worker0", 0, [("ok", {})])
        with open(tmp_path / "worker0.0.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"type": "span", "name": "torn')  # killed mid-write
        out = str(tmp_path / "trace.json")
        stats = merge_shards(str(tmp_path), out)
        assert stats["spans"] == 1
        assert validate_chrome_trace(out) == []

    def test_respawned_worker_merges_onto_same_track(self, tmp_path):
        self._shard(tmp_path, "controller.jsonl", "controller", 0, [("run", {})])
        self._shard(tmp_path, "worker0.0.jsonl", "worker0", 0, [("a", {})])
        self._shard(tmp_path, "worker0.1.jsonl", "worker0", 1, [("b", {})])
        out = str(tmp_path / "trace.json")
        stats = merge_shards(str(tmp_path), out, run_metadata={"k": 4})
        assert stats["spans"] == 3
        assert stats["processes"] == 2  # both incarnations share worker0
        document = json.load(open(out, encoding="utf-8"))
        assert document["otherData"] == {"k": 4}
        names = {
            e["args"]["name"]: e["pid"]
            for e in document["traceEvents"]
            if e["ph"] == "M"
        }
        assert names["controller"] == 0  # controller is always track 0
        respawned = [
            e for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "b"
        ]
        assert respawned[0]["pid"] == names["worker0"]
        assert respawned[0]["args"]["incarnation"] == 1

    def test_flow_events_pair_caller_and_callee(self, tmp_path):
        caller = Tracer(process="controller", clock=FakeClock())
        with caller.span("rpc.pull", category="rpc", flow_id=7, flow="out"):
            pass
        callee = Tracer(process="worker0", clock=FakeClock())
        with callee.span("handle.pull", category="rpc", flow_id=7, flow="in"):
            pass
        records = [r.as_line() for r in caller.records + callee.records]
        for record in records:
            record.setdefault("incarnation", 0)
        events = chrome_events(records)
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == 1 and len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"] == 7
        assert finishes[0]["bp"] == "e"
        assert starts[0]["pid"] != finishes[0]["pid"]

    def test_validate_rejects_malformed(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "traceEvents": [
                        {"ph": "Z", "name": "x", "pid": 0, "tid": 0},
                        {"ph": "X", "name": "y", "pid": 0, "tid": 0,
                         "ts": "oops", "dur": -1},
                        {"ph": "s", "name": "flow", "pid": 0, "tid": 0},
                    ]
                },
                fh,
            )
        problems = validate_chrome_trace(path)
        assert len(problems) == 4  # bad phase, bad ts, bad dur, id-less flow
        assert validate_chrome_trace(str(tmp_path / "missing.json"))


class TestTracedPipeline:
    def test_process_runtime_trace_end_to_end(self, fattree4, tmp_path):
        trace_out = str(tmp_path / "trace.json")
        metrics_out = str(tmp_path / "metrics.json")
        options = S2Options(
            num_workers=2,
            num_shards=2,
            runtime="process",
            trace_out=trace_out,
            metrics_out=metrics_out,
        )
        with S2Controller(fattree4, options) as controller:
            controller.run_control_plane()
            controller.checker()
        assert validate_chrome_trace(trace_out) == []
        document = json.load(open(trace_out, encoding="utf-8"))
        events = document["traceEvents"]
        tracks = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert tracks == {"controller", "worker0", "worker1"}
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"cpo.run", "cpo.round", "rpc.pull_round",
                "handle.pull_round", "worker.pull",
                "dpo.build", "bdd.compile"} <= names
        # every flow start has a matching finish (no faults injected)
        starts = {e["id"] for e in events if e["ph"] == "s"}
        finishes = {e["id"] for e in events if e["ph"] == "f"}
        assert starts and starts == finishes
        # metrics landed with pipeline counters and worker stats
        payload = json.load(open(metrics_out, encoding="utf-8"))
        assert payload["counters"]["cpo.bgp_rounds"] > 0
        assert payload["counters"]["rpc.bytes_sent"] > 0
        assert len(payload["workers"]) == 2

    def test_in_process_trace_shards(self, fattree4, tmp_path):
        trace_out = str(tmp_path / "trace.json")
        options = S2Options(
            num_workers=2, num_shards=2, trace_out=trace_out
        )
        with S2Controller(fattree4, options) as controller:
            controller.run_control_plane()
        shard_dir = trace_out + ".shards"
        shards = sorted(os.listdir(shard_dir))
        assert shards == [
            "controller.jsonl", "worker0.0.jsonl", "worker1.0.jsonl"
        ]
        spans = load_spans(shard_dir)
        assert any(s["name"] == "worker.exports" for s in spans)

    def test_tracing_disabled_leaves_no_artifacts(self, fattree4, tmp_path):
        with S2Controller(fattree4, S2Options(num_workers=2)) as controller:
            controller.run_control_plane()
            assert controller.tracer is NULL_TRACER
        assert list(tmp_path.iterdir()) == []


class TestReport:
    def _trace(self, tmp_path):
        tracer = Tracer(process="controller", clock=FakeClock())
        with tracer.span("verify"):
            with tracer.span("cpo.round", category="cpo"):
                pass
            with tracer.span("cpo.round", category="cpo"):
                pass
        path = str(tmp_path / "shard.jsonl")
        tracer.export_jsonl(path)
        return path

    def test_phase_breakdown_aggregates_and_sorts(self, tmp_path):
        spans = load_spans(self._trace(tmp_path))
        rows = phase_breakdown(spans)
        assert rows[0][0] == "verify"  # longest phase first
        by_phase = {row[0]: row for row in rows}
        assert by_phase["cpo.round"][1] == 2  # aggregated count

    def test_render_report_by_process_and_category(self, tmp_path):
        path = self._trace(tmp_path)
        table = render_report(path, by_process=True, category="cpo")
        assert "controller:cpo.round" in table
        assert "verify" not in table  # category filter dropped it

    def test_report_cli_round_trip(self, tmp_path, capsys):
        trace_out = str(tmp_path / "trace.json")
        code = main(
            [
                "verify", "fattree", "--k", "4", "--workers", "2",
                "--trace-out", trace_out,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace written to" in out
        assert validate_chrome_trace(trace_out) == []
        # merged Chrome file and the raw shard directory both render
        for target in (trace_out, trace_out + ".shards"):
            assert main(["report", target, "--top", "5"]) == 0
            report = capsys.readouterr().out
            assert "participants" in report
            assert "phase" in report
        assert main(["report", str(tmp_path / "nope.json")]) == 2
