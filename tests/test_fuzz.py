"""The fuzzing subsystem's own tests: generator validity invariants,
oracle sensitivity (a deliberately-blinded projection must miss what the
full projection catches), and shrinker convergence.
"""

import copy
import json
from dataclasses import replace

import pytest

from repro.config.loader import parse_device
from repro.fuzz.corpus import CorpusCase, load_corpus, save_case
from repro.fuzz.generators import (
    GeneratorProfile,
    NetworkSpec,
    NodeSpec,
    PRIVATE_ASN,
    build_snapshot,
    generate_spec,
    render_texts,
)
from repro.fuzz.oracle import (
    CheckPlan,
    DEFAULT_FIELDS,
    DifferentialOracle,
    RouteProjection,
)
from repro.fuzz.shrink import shrink_spec
from repro.routing.engine import ConvergenceError, SimulationEngine
from repro.routing.route import BgpRoute
from repro.net.ip import Prefix

SEEDS = range(30)


# The minimal MED/iBGP oscillation gadget (shrunken from a real fuzzing
# divergence; see tests/corpus/gadget-med-ibgp-oscillation.json): the
# distributed engines must *detect* its non-convergence, so the oracle
# has a guaranteed-divergent input.
def med_oscillation_spec() -> NetworkSpec:
    return NetworkSpec(
        nodes=[
            NodeSpec(index=0, asn=3001),
            NodeSpec(index=1, asn=3001),
            NodeSpec(
                index=7, asn=3008, networks=["10.7.0.0/24"], export_med=22
            ),
        ],
        links=[(0, 1), (0, 7), (1, 7)],
        seed=-1,
    )


class TestGeneratorValidity:
    def test_deterministic_per_seed(self):
        for seed in SEEDS:
            first = generate_spec(seed)
            second = generate_spec(seed)
            assert first.to_dict() == second.to_dict()
            assert render_texts(first) == render_texts(second)

    def test_specs_differ_across_seeds(self):
        dicts = {json.dumps(generate_spec(s).to_dict()) for s in SEEDS}
        assert len(dicts) > len(SEEDS) // 2

    def test_configs_parse_in_their_dialect(self):
        for seed in SEEDS:
            for hostname, (dialect, text) in render_texts(
                generate_spec(seed)
            ).items():
                config = parse_device(text, dialect)
                assert config.hostname == hostname
                assert config.bgp is not None

    def test_graphs_are_connected(self):
        for seed in SEEDS:
            spec = generate_spec(seed)
            assert spec.is_connected()
            assert any(node.networks for node in spec.nodes)

    def test_snapshots_simulate(self):
        for seed in SEEDS:
            result = SimulationEngine(
                build_snapshot(generate_spec(seed))
            ).run()
            assert result

    def test_feature_coverage_across_seeds(self):
        specs = [generate_spec(s) for s in range(80)]
        assert any(
            n.conditional for spec in specs for n in spec.nodes
        )
        assert any(
            n.aggregate for spec in specs for n in spec.nodes
        )
        assert any(
            n.dialect == "juniperish" for spec in specs for n in spec.nodes
        )
        assert any(
            n.v6_networks for spec in specs for n in spec.nodes
        )
        # at least one multi-node iBGP island somewhere
        assert any(
            len({n.asn for n in spec.nodes}) < spec.size for spec in specs
        )

    def test_spec_roundtrips_through_json(self):
        for seed in SEEDS:
            spec = generate_spec(seed)
            clone = NetworkSpec.from_dict(
                json.loads(json.dumps(spec.to_dict()))
            )
            assert clone.to_dict() == spec.to_dict()


class TestGeneratorSafetyInvariants:
    """The structural constraints that keep every generated network at a
    unique BGP fixed point (so engine divergence is always a bug)."""

    def test_single_ibgp_island(self):
        for seed in range(100):
            spec = generate_spec(seed)
            sizes = {}
            for node in spec.nodes:
                sizes[node.asn] = sizes.get(node.asn, 0) + 1
            assert sum(1 for c in sizes.values() if c > 1) <= 1

    def test_island_policies_uniform(self):
        for seed in range(100):
            spec = generate_spec(seed)
            by_asn = {}
            for node in spec.nodes:
                by_asn.setdefault(node.asn, []).append(node)
            for island in by_asn.values():
                assert len({n.local_pref for n in island}) == 1
                assert len({n.export_med for n in island}) == 1

    def test_no_med_near_islands(self):
        for seed in range(100):
            spec = generate_spec(seed)
            counts = {}
            for node in spec.nodes:
                counts[node.asn] = counts.get(node.asn, 0) + 1
            islanders = {
                n.index for n in spec.nodes if counts[n.asn] > 1
            }
            exposed = set(islanders)
            for a, b in spec.links:
                if a in islanders:
                    exposed.add(b)
                if b in islanders:
                    exposed.add(a)
            for node in spec.nodes:
                if node.index in exposed:
                    assert node.export_med is None

    def test_private_decoys_only_on_leaves(self):
        for seed in range(100):
            spec = generate_spec(seed)
            degree = {n.index: 0 for n in spec.nodes}
            for a, b in spec.links:
                degree[a] += 1
                degree[b] += 1
            for node in spec.nodes:
                if node.export_private_prepend:
                    assert degree[node.index] == 1

    def test_at_most_one_private_stripper(self):
        for seed in range(100):
            spec = generate_spec(seed)
            assert (
                sum(1 for n in spec.nodes if n.remove_private_as) <= 1
            )


class TestOracleSensitivity:
    def test_flags_known_oscillation_gadget(self):
        report = DifferentialOracle(CheckPlan.quick()).check(
            med_oscillation_spec()
        )
        assert not report.ok
        assert any(
            "ConvergenceError" in d.got
            for d in report.divergences
            if d.kind == "error"
        )

    def test_clean_seed_passes(self):
        report = DifferentialOracle(CheckPlan.quick()).check(
            generate_spec(0)
        )
        assert report.ok
        assert "mono" in report.variants_run
        assert any(v.startswith("dist") for v in report.variants_run)

    def test_mutant_projection_misses_med_divergence(self):
        """The oracle is only as good as its projection: a mutant that
        skips ``med`` must miss a MED-only difference that the full
        projection catches — proving the comparison is not vacuous."""
        prefix = Prefix.parse("10.0.0.0/24")
        base = BgpRoute(
            prefix=prefix,
            next_hop=1,
            from_node="r1",
            as_path=(3001,),
            med=10,
        )
        mutated = {"r0": {prefix: (replace(base, med=20),)}}
        baseline = {"r0": {prefix: (base,)}}

        full = RouteProjection()
        assert full.normalize(baseline) != full.normalize(mutated)

        blinded = RouteProjection(
            fields=tuple(f for f in DEFAULT_FIELDS if f != "med")
        )
        assert blinded.normalize(baseline) == blinded.normalize(mutated)

    def test_diff_localizes_divergence(self):
        prefix = Prefix.parse("10.0.0.0/24")
        base = BgpRoute(
            prefix=prefix, next_hop=1, from_node="r1", as_path=(3001,)
        )
        oracle = DifferentialOracle(CheckPlan.quick())
        projection = oracle.plan.projection
        divs = oracle._diff(
            "variant-x",
            projection.normalize({"r0": {prefix: (base,)}}),
            projection.normalize(
                {"r0": {prefix: (replace(base, local_pref=150),)}}
            ),
        )
        assert len(divs) == 1
        assert divs[0].host == "r0"
        assert divs[0].prefix == "10.0.0.0/24"
        assert "local_pref=150" in divs[0].got


class TestShrinker:
    def _hangs_distributed(self, spec) -> bool:
        from repro.dist.controller import S2Controller, S2Options

        try:
            SimulationEngine(build_snapshot(spec)).run()
        except Exception:
            return False
        try:
            with S2Controller(
                build_snapshot(spec),
                S2Options(
                    num_workers=min(3, spec.size), runtime="sequential"
                ),
            ) as controller:
                controller.run_control_plane()
            return False
        except ConvergenceError:
            return True
        except Exception:
            return False

    def test_converges_to_minimal_gadget(self):
        """Padding the known gadget with irrelevant structure and
        shrinking must strip the padding back off."""
        spec = med_oscillation_spec()
        padded = copy.deepcopy(spec)
        padded.nodes.append(
            NodeSpec(
                index=9,
                asn=3010,
                networks=["10.9.0.0/24"],
                v6_networks=["2001:db8:9::/64"],
                static_discards=["192.168.9.0/24"],
            )
        )
        padded.links.append((7, 9))
        padded.node(7).export_community = "65000:9"
        assert self._hangs_distributed(padded)

        result = shrink_spec(padded, self._hangs_distributed)
        assert self._hangs_distributed(result.spec)
        assert result.spec.size == 3
        assert result.spec.feature_count() < padded.feature_count()
        # 1-minimality: the gadget needs all three nodes and the MED
        assert result.spec.node(7).export_med is not None

    def test_never_mutates_input(self):
        spec = med_oscillation_spec()
        snapshot = json.dumps(spec.to_dict())
        shrink_spec(spec, self._hangs_distributed, max_evaluations=30)
        assert json.dumps(spec.to_dict()) == snapshot

    def test_returns_input_when_predicate_fails(self):
        spec = generate_spec(0)
        result = shrink_spec(spec, lambda s: False, max_evaluations=50)
        assert result.accepted == 0
        assert result.spec.to_dict() == spec.to_dict()


class TestCorpusFormat:
    def test_save_load_roundtrip(self, tmp_path):
        case = CorpusCase(
            name="roundtrip",
            description="seed-backed case",
            seed=5,
            profile={"max_nodes": 6},
        )
        save_case(case, str(tmp_path))
        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == 1
        assert loaded[0].name == "roundtrip"
        assert loaded[0].seed == 5
        assert (
            loaded[0].resolve_spec().to_dict()
            == generate_spec(5, GeneratorProfile(max_nodes=6)).to_dict()
        )

    def test_spec_cases_resolve_without_seed(self, tmp_path):
        case = CorpusCase(
            name="explicit",
            spec=med_oscillation_spec(),
            expect="divergent",
        )
        save_case(case, str(tmp_path))
        loaded = load_corpus(str(tmp_path))[0]
        assert loaded.expect == "divergent"
        assert loaded.resolve_spec().size == 3


class TestFuzzCli:
    def test_smoke_iterations_run_clean(self, capsys):
        from repro.cli import main

        code = main(
            [
                "fuzz",
                "--iterations",
                "3",
                "--seed",
                "0",
                "--no-threaded",
                "--profile",
                "smoke",
            ]
        )
        assert code == 0
        assert "3/3 equivalent" in capsys.readouterr().out

    def test_divergence_sets_exit_code_and_saves(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main
        import repro.fuzz.generators as generators

        gadget = med_oscillation_spec()
        monkeypatch.setattr(
            generators,
            "generate_spec",
            lambda seed, profile=None: copy.deepcopy(gadget),
        )
        code = main(
            [
                "fuzz",
                "--iterations",
                "1",
                "--no-threaded",
                "--shrink",
                "--corpus-dir",
                str(tmp_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        saved = load_corpus(str(tmp_path))
        assert len(saved) == 1
        assert saved[0].expect == "divergent"
