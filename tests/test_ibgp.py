"""Tests for the iBGP code paths of the switch model.

The synthesized networks are all-eBGP (like the paper's), but the model
implements the iBGP rules real snapshots need: same-ASN sessions do not
prepend, preserve local-pref, skip the eBGP loop check, rank below eBGP
in the decision process, and obey the no-transit rule (iBGP-learned
routes are not re-advertised to other iBGP peers without a route
reflector).
"""

import pytest

from repro.config.loader import make_snapshot, parse_device
from repro.net.ip import Prefix, format_ip
from repro.routing.engine import SimulationEngine

P = Prefix.parse("10.9.0.0/24")


def device(name, asn, ifaces, neighbors, extra=""):
    lines = [f"hostname {name}"]
    for iname, ip in ifaces:
        lines += [f"interface {iname}", f" ip address {ip} 255.255.255.254"]
    lines.append(f"router bgp {asn}")
    lines.append(f" bgp router-id {format_ip(abs(hash(name)) % 255 + 1)}")
    for peer, peer_asn, *policy in neighbors:
        lines.append(f" neighbor {peer} remote-as {peer_asn}")
        for entry in policy:
            lines.append(f" neighbor {peer} {entry}")
    if extra:
        lines.append(extra.rstrip())
    return parse_device("\n".join(lines) + "\n", "ciscoish")


def snapshot_of(*configs):
    return make_snapshot({c.hostname: c for c in configs})


@pytest.fixture(scope="module")
def ibgp_chain():
    """a ==iBGP== b ==iBGP== c (all AS 65000), plus eBGP peer d at b.

    a originates P.
    """
    a = device(
        "a", 65000, [("e0", "10.0.0.0")], [("10.0.0.1", 65000)],
        extra=" network 10.9.0.0 mask 255.255.255.0",
    )
    b = device(
        "b", 65000,
        [("e0", "10.0.0.1"), ("e1", "10.0.0.2"), ("e2", "10.0.0.4")],
        [
            ("10.0.0.0", 65000),
            ("10.0.0.3", 65000),
            ("10.0.0.5", 65099),
        ],
    )
    c = device("c", 65000, [("e0", "10.0.0.3")], [("10.0.0.2", 65000)])
    d = device("d", 65099, [("e0", "10.0.0.5")], [("10.0.0.4", 65000)])
    snapshot = snapshot_of(a, b, c, d)
    engine = SimulationEngine(snapshot)
    routes = engine.run()
    return engine, routes


class TestIbgpAttributes:
    def test_no_prepend_on_ibgp(self, ibgp_chain):
        _, routes = ibgp_chain
        got = routes["b"][P][0]
        assert got.as_path == ()  # originated, no eBGP hop yet
        assert not got.ebgp

    def test_local_pref_preserved_across_ibgp(self, ibgp_chain):
        """iBGP carries local-pref; here the default 100 survives."""
        _, routes = ibgp_chain
        assert routes["b"][P][0].local_pref == 100

    def test_ebgp_export_prepends_once(self, ibgp_chain):
        _, routes = ibgp_chain
        got = routes["d"][P][0]
        assert got.as_path == (65000,)
        assert got.ebgp

    def test_no_transit_rule(self, ibgp_chain):
        """b must NOT re-advertise the iBGP-learned route to c (no route
        reflector configured): c never learns P."""
        _, routes = ibgp_chain
        assert P not in routes.get("c", {})

    def test_ebgp_learned_goes_to_ibgp_peers(self):
        """The inverse direction: an eBGP-learned route IS advertised to
        iBGP peers."""
        x = device(
            "x", 65099, [("e0", "10.0.0.0")], [("10.0.0.1", 65000)],
            extra=" network 10.8.0.0 mask 255.255.0.0",
        )
        a = device(
            "a", 65000,
            [("e0", "10.0.0.1"), ("e1", "10.0.0.2")],
            [("10.0.0.0", 65099), ("10.0.0.3", 65000)],
        )
        b = device("b", 65000, [("e0", "10.0.0.3")], [("10.0.0.2", 65000)])
        engine = SimulationEngine(snapshot_of(x, a, b))
        routes = engine.run()
        got = routes["b"][Prefix.parse("10.8.0.0/16")][0]
        assert got.as_path == (65099,)  # no iBGP prepend at a
        assert not got.ebgp


class TestDecisionPreference:
    def test_ebgp_beats_ibgp_for_same_prefix(self):
        """a hears P over eBGP (longer path) and over iBGP: eBGP wins at
        equal local-pref and path length."""
        # o originates P; a has an eBGP session to o AND an iBGP session
        # to m, which also peers with o.
        o = device(
            "o", 65001,
            [("e0", "10.0.0.0"), ("e1", "10.0.0.2")],
            [("10.0.0.1", 65000), ("10.0.0.3", 65000)],
            extra=" network 10.9.0.0 mask 255.255.255.0",
        )
        a = device(
            "a", 65000,
            [("e0", "10.0.0.1"), ("e1", "10.0.0.4")],
            [("10.0.0.0", 65001), ("10.0.0.5", 65000)],
        )
        m = device(
            "m", 65000,
            [("e0", "10.0.0.3"), ("e1", "10.0.0.5")],
            [("10.0.0.2", 65001), ("10.0.0.4", 65000)],
        )
        engine = SimulationEngine(snapshot_of(o, a, m))
        routes = engine.run()
        best = routes["a"][P]
        assert all(r.ebgp for r in best)
        assert best[0].from_node == "o"

    def test_distributed_matches_monolithic_with_ibgp(self, ibgp_chain):
        from tests.conftest import normalize_ribs
        from repro.dist.controller import S2Controller, S2Options

        engine, expected = ibgp_chain
        with S2Controller(
            engine.snapshot, S2Options(num_workers=3)
        ) as controller:
            controller.run_control_plane()
            got = controller.collected_ribs()
            assert normalize_ribs(got) == normalize_ribs(expected)
