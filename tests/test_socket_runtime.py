"""The socket runtime end to end: TCP workers, chaos, and the CLI.

The distributed claim under test (ISSUE acceptance bar): a FatTree4
verification on the ``socket`` runtime — including one run with a
healing partition, a torn frame, *and* a worker crash — completes with
results bit-identical to the sequential engine, with no hung processes
and the transport counters visible in the metrics snapshot.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading

import pytest

from repro import FaultPlan, FaultSpec, RetryPolicy, S2Options, S2Verifier
from repro.dist.controller import S2Controller
from repro.dist.service import WorkerService
from repro.dist.transport import RpcChannel, RpcServer

from tests.conftest import normalize_ribs

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _options(**overrides) -> S2Options:
    defaults = dict(num_workers=3, num_shards=2, runtime="socket")
    defaults.update(overrides)
    return S2Options(**defaults)


@pytest.fixture(scope="module")
def baseline(fattree4):
    with S2Verifier(fattree4, S2Options(num_workers=3, num_shards=2)) as v:
        result = v.verify()
        ribs = normalize_ribs(v.collected_ribs())
    assert result.status == "ok"
    return result, ribs


def test_socket_runtime_matches_sequential(fattree4, baseline):
    base_result, base_ribs = baseline
    with S2Verifier(fattree4, _options()) as verifier:
        result = verifier.verify()
        ribs = normalize_ribs(verifier.collected_ribs())
        snapshot = verifier.controller.metrics_snapshot()
    assert result.status == "ok"
    assert result.reachable_pairs == base_result.reachable_pairs
    assert result.checked_pairs == base_result.checked_pairs
    assert ribs == base_ribs
    # Transport counters surface in the metrics snapshot, per worker
    # and as a fleet total.
    transport = snapshot["transport"]
    assert transport["total"]["calls"] > 0
    assert transport["total"]["frames_sent"] > 0
    assert set(transport) >= {"worker0", "worker1", "worker2", "total"}


def test_socket_chaos_acceptance(fattree4, baseline):
    """The acceptance scenario: partition + torn frame + crash in one
    run, absorbed without a sequential fallback, identical results."""
    _, base_ribs = baseline
    plan = FaultPlan(
        [
            FaultSpec(
                kind="partition",
                worker=1,
                command="pull_round",
                where="response",
                heal_after=2,
            ),
            FaultSpec(kind="torn_frame", worker=0, command="compute_exports"),
            FaultSpec(kind="crash", worker=2, command="pull_round"),
        ]
    )
    options = _options(
        fault_plan=plan, retry_policy=RetryPolicy(backoff_base=0.01)
    )
    with S2Verifier(fattree4, options) as verifier:
        result = verifier.verify()
        ribs = normalize_ribs(verifier.collected_ribs())
        report = verifier.controller.report()
        snapshot = verifier.controller.metrics_snapshot()
    assert plan.count("partition") == 1
    assert plan.count("torn_frame") == 1
    assert plan.count("crash") == 1
    assert result.status == "ok"
    assert ribs == base_ribs
    assert not result.cp_stats.sequential_fallback
    # Only the crash needs the supervisor; the network faults are
    # absorbed inside the channel's retry loop.
    assert report.total_respawns >= 1
    transport = snapshot["transport"]["total"]
    assert transport["retries"] >= 1
    assert transport["reconnects"] >= 1
    assert transport["torn_frames"] >= 1


def test_socket_pool_detects_and_respawns_dead_worker(fattree4):
    with S2Controller(fattree4, _options()) as controller:
        pool = controller._pool
        assert pool.dead_workers() == []
        assert pool.ping_all() == []
        victim = pool.proxies[1]
        victim._process.kill()
        victim._process.join(5.0)
        assert 1 in [w for w in pool.ping_all()] or pool.dead_workers() == [1]
        pool.respawn(1)
        assert pool.dead_workers() == []
        assert victim.ping()                      # same proxy object
        assert victim.resources.respawns == 1


def test_socket_pool_close_leaves_no_processes(fattree4):
    controller = S2Controller(fattree4, _options())
    processes = [proxy._process for proxy in controller._pool.proxies]
    assert all(process.is_alive() for process in processes)
    controller.close()
    assert not any(process.is_alive() for process in processes)
    controller.close()  # idempotent


# -- connect mode (pre-started listeners, as on a real fleet) ---------------


class _Listener:
    """An in-thread stand-in for ``repro worker --listen``."""

    def __init__(self):
        self.service = WorkerService()

        def handler(command, args, flow_id):
            if command == "__configure__":
                self.service.configure(*args)
                return "ok", None
            return self.service.dispatch(command, args, flow_id)

        self.server = RpcServer(handler)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    @property
    def spec(self) -> str:
        return f"{self.server.host}:{self.server.port}"

    def close(self):
        self.server.stop()
        self.thread.join(5.0)
        self.service.finish()


def test_connect_mode_against_prestarted_listeners(fattree4, baseline):
    _, base_ribs = baseline
    listeners = [_Listener(), _Listener()]
    try:
        options = _options(
            num_workers=2,
            worker_hosts=[listener.spec for listener in listeners],
        )
        with S2Controller(fattree4, options) as controller:
            assert not controller._pool.managed
            controller.run_control_plane()
            ribs = normalize_ribs(controller.collected_ribs())
        assert ribs == base_ribs
    finally:
        for listener in listeners:
            listener.close()


def test_connect_mode_respawn_is_a_reconfigure(fattree4):
    """In connect mode a respawn redials the same listener and replays
    ``__configure__`` at the next incarnation — a logical respawn."""
    listener = _Listener()
    try:
        options = _options(num_workers=1, num_shards=1,
                           worker_hosts=[listener.spec])
        with S2Controller(fattree4, options) as controller:
            pool = controller._pool
            assert pool._incarnations[0] == 0
            assert pool.proxies[0].ping()
            pool.respawn(0)
            assert pool._incarnations[0] == 1
            assert pool.proxies[0].ping()
            assert listener.server.stats["connections"] >= 2
    finally:
        listener.close()


def test_connect_mode_requires_enough_hosts(fattree4):
    with pytest.raises(ValueError, match="worker hosts"):
        S2Controller(
            fattree4,
            _options(num_workers=3, worker_hosts=["127.0.0.1:1"]),
        )


# -- the worker command end to end ------------------------------------------


def test_repro_worker_subprocess_serves_and_stops():
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        banner = proc.stdout.readline().strip()
        assert banner.startswith("worker listening on ")
        host, _, port = banner.rpartition(" ")[2].rpartition(":")
        channel = RpcChannel((host, int(port)))
        try:
            assert channel.call("__ping__", internal=True) == ("ok", "pong")
            channel.call("__stop__", internal=True)
        finally:
            channel.close()
        assert proc.wait(timeout=10.0) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(5.0)


# -- CLI --------------------------------------------------------------------


def test_cli_socket_runtime_with_metrics_and_chaos(tmp_path, capsys):
    from repro.cli import main

    metrics_path = str(tmp_path / "metrics.json")
    code = main(
        [
            "verify",
            "fattree",
            "--k",
            "4",
            "--runtime",
            "socket",
            "--workers",
            "3",
            "--shards",
            "2",
            "--rpc-timeout",
            "60",
            "--rpc-retries",
            "3",
            "--inject-fault",
            "torn_frame:worker=0,command=compute_exports",
            "--metrics-out",
            metrics_path,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "OK" in out
    with open(metrics_path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    transport = snapshot["transport"]["total"]
    assert transport["calls"] > 0
    assert transport["torn_frames"] >= 1


def test_cli_worker_hosts_requires_socket_runtime(capsys):
    from repro.cli import main

    code = main(
        [
            "verify",
            "fattree",
            "--k",
            "4",
            "--runtime",
            "process",
            "--worker-hosts",
            "127.0.0.1:9001",
        ]
    )
    assert code == 2
    assert "socket" in capsys.readouterr().err
