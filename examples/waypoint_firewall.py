#!/usr/bin/env python3
"""Waypoint and ACL verification: does all DMZ traffic cross the firewall?

A small enterprise-style network built from raw config text (both vendor
dialects), demonstrating the §4.4 query types beyond plain reachability:

* waypoint   — every packet from the campus to the DMZ must traverse the
               firewall node;
* blackhole  — the firewall's ACL must drop telnet, and nothing else;
* multipath consistency — packets from one source must not meet
               different fates on different ECMP paths.

The network:   campus ── rtr1 ══ fw ══ rtr2 ── dmz     (══ is the policy
path) plus a *backdoor* link rtr1 ── rtr2 that the operator believes is
disabled.  With the backdoor's higher IGP-style preference removed, some
traffic bypasses the firewall: the waypoint check catches it.

Run:  python examples/waypoint_firewall.py
"""

from repro.bdd.headerspace import HeaderEncoding
from repro.config.loader import make_snapshot, parse_device
from repro.dataplane.queries import Query
from repro.dist.controller import S2Controller, S2Options
from repro.net.ip import Prefix

CAMPUS = Prefix.parse("10.10.0.0/24")
DMZ = Prefix.parse("10.20.0.0/24")


def build(backdoor_up: bool):
    rtr1 = f"""\
hostname rtr1
interface eth0
 ip address 10.0.0.0 255.255.255.254
interface eth1
 ip address 10.0.1.0 255.255.255.254
router bgp 65001
 maximum-paths 4
 network 10.10.0.0 mask 255.255.255.0
 neighbor 10.0.0.1 remote-as 65100
{" neighbor 10.0.1.1 remote-as 65002" if backdoor_up else ""}
"""
    fw = """\
hostname fw
interface eth0
 ip address 10.0.0.1 255.255.255.254
interface eth1
 ip address 10.0.2.0 255.255.255.254
 ip access-group SCRUB out
ip access-list extended SCRUB
 10 deny tcp any any eq 23
 20 permit ip any any
router bgp 65100
 neighbor 10.0.0.0 remote-as 65001
 neighbor 10.0.2.1 remote-as 65002
"""
    # The backdoor export carries a legacy one-ASN prepend (a leftover of
    # an old traffic-engineering template), which makes its AS path tie
    # with the firewall path — so rtr1 ECMPs DMZ traffic across both.
    backdoor_lines = (
        " neighbor 10.0.1.0 remote-as 65001\n"
        " neighbor 10.0.1.0 route-map LEGACY-TE out"
        if backdoor_up
        else ""
    )
    rtr2 = f"""\
hostname rtr2
interface eth0
 ip address 10.0.2.1 255.255.255.254
interface eth1
 ip address 10.0.1.1 255.255.255.254
route-map LEGACY-TE permit 10
 set as-path prepend 65002
router bgp 65002
 maximum-paths 4
 network 10.20.0.0 mask 255.255.255.0
 neighbor 10.0.2.0 remote-as 65100
{backdoor_lines}
"""
    configs = {}
    for text in (rtr1, fw, rtr2):
        config = parse_device(text, "ciscoish")
        configs[config.hostname] = config
    return make_snapshot(configs, name="dmz" + ("-backdoor" if backdoor_up else ""))


def check(snapshot, label):
    print(f"=== {label} ===")
    options = S2Options(
        num_workers=2,
        encoding=HeaderEncoding(
            fields=("dst", "proto", "dport"), metadata_bits=1
        ),
    )
    with S2Controller(snapshot, options) as controller:
        checker = controller.checker()

        waypoint_query = Query(
            sources=("rtr1",),
            destinations=("rtr2",),
            transits=("fw",),
            header_space=DMZ,
        )
        violations = checker.check_waypoint(waypoint_query)
        bypassing = violations["fw"]
        if bypassing:
            print(f"WAYPOINT VIOLATED: {len(bypassing)} packet set(s) "
                  f"reach the DMZ without crossing the firewall")
        else:
            print("waypoint holds: all DMZ-bound traffic crosses fw")

        blackholes = checker.check_blackhole_free(
            Query(sources=("rtr1",), header_space=DMZ)
        )
        for violation in blackholes:
            print(f"dropped at {violation.node}: {violation.example}")

        consistency = checker.check_multipath_consistency(
            Query(sources=("rtr1",), header_space=DMZ)
        )
        if consistency:
            states = ", ".join(
                f"{v.states[0].value} vs {v.states[1].value}"
                for v in consistency
            )
            print(f"MULTIPATH INCONSISTENCY: {states}")
        else:
            print("multipath-consistent: every path treats packets alike")
    print()
    return bool(bypassing), bool(consistency)


def main():
    bypassed, inconsistent = check(build(backdoor_up=False), "policy path only")
    assert not bypassed and not inconsistent

    bypassed, inconsistent = check(
        build(backdoor_up=True), "with the forgotten backdoor link"
    )
    # ECMP now splits DMZ traffic between fw (which scrubs telnet) and the
    # backdoor (which does not): the waypoint breaks, and telnet packets
    # arrive on one path while blackholing on the other.
    assert bypassed, "the waypoint check must catch the backdoor"
    assert inconsistent, "telnet meets different fates on the two paths"
    print("S2 verdict: the backdoor link violates the firewall policy.")


if __name__ == "__main__":
    main()
