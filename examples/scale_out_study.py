#!/usr/bin/env python3
"""Scale-out study: how many workers and shards does a network need?

A compact version of the paper's §5.5–§5.7 methodology that operators can
point at their own snapshot: sweep worker counts and shard counts, report
modeled time / per-worker peak memory, and recommend a configuration.

Run:  python examples/scale_out_study.py [k]
"""

import sys

from repro import S2Options
from repro.core.s2 import verify_snapshot
from repro.harness.reporting import format_table
from repro.net.fattree import build_fattree


def sweep(k: int):
    rows = []
    for workers in (1, 2, 4, 8):
        for shards in (0, 10, 20):
            result = verify_snapshot(
                build_fattree(k),
                S2Options(
                    num_workers=workers,
                    num_shards=shards,
                    worker_capacity=1 << 62,
                ),
            )
            rows.append(
                {
                    "workers": workers,
                    "shards": shards or 1,
                    "modeled": result.modeled_time,
                    "peak": result.peak_worker_bytes,
                    "wall": result.wall_seconds,
                }
            )
    return rows


def main():
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    print(f"sweeping FatTree k={k} "
          f"({build_fattree(k).metadata['kind']}, "
          f"{len(build_fattree(k))} switches)\n")
    rows = sweep(k)
    print(
        format_table(
            ["workers", "shards", "modeled-time", "peak-mem(MB)", "wall-s"],
            [
                [
                    r["workers"],
                    r["shards"],
                    round(r["modeled"]),
                    round(r["peak"] / (1 << 20), 2),
                    round(r["wall"], 2),
                ]
                for r in rows
            ],
            title="scale-out sweep",
        )
    )
    # recommend: the cheapest configuration within 10% of the best time
    best_time = min(r["modeled"] for r in rows)
    affordable = [r for r in rows if r["modeled"] <= best_time * 1.1]
    pick = min(affordable, key=lambda r: (r["workers"], r["peak"]))
    print(
        f"\nrecommendation: {pick['workers']} workers, "
        f"{pick['shards']} shard(s) — within 10% of the fastest run "
        f"at the lowest worker count "
        f"({pick['peak'] / (1 << 20):.2f} MB peak per worker)"
    )


if __name__ == "__main__":
    main()
