#!/usr/bin/env python3
"""Ground-truth audit: concrete packets judging the symbolic verifier.

Builds a 2-datacenter folded Clos (three ECMP tiers, inter-DC paths),
verifies it with the distributed pipeline, then replays the verdicts
with `repro.groundtruth`: witness packets sampled from every reachable
pair must *actually arrive* when walked hop-by-hop through the computed
FIBs — by a walker that shares no code with the BDD engine — and
near-miss packets from just outside each destination prefix must not.
Finally it corrupts one FIB to show what a detection looks like.

Run:  python examples/groundtruth_audit.py
"""

from repro import S2Options, S2Verifier
from repro.dataplane.verifier import verifier_from_ribs
from repro.groundtruth import audit_verifier
from repro.net.folded_clos import build_folded_clos

snapshot = build_folded_clos(dcs=2, pods=2, leaves=2, spines=2)
print(f"synthesized {snapshot.name}: {len(snapshot)} switches, "
      f"{len(list(snapshot.topology.links()))} links, 2 datacenters")

options = S2Options(num_workers=4, num_shards=4)
with S2Verifier(snapshot, options) as verifier:
    result = verifier.verify()
    print(result.summary())
    ribs = verifier.collected_ribs()

# Walk the *distributed* run's FIBs with concrete packets.
dpv = verifier_from_ribs(snapshot, ribs)
report = audit_verifier(dpv, seed=0, witnesses=2, near_misses=2)
print(f"\nground-truth audit: {report.summary()}")
assert report.ok

# What a real disagreement looks like: blank one leaf's FIB after the
# symbolic verdicts are computed and audit again.
victim = dpv.prefix_holders()[0]
dpv.compile_predicates()


class EmptyFib:
    def entries(self):
        return []


dpv.fibs[victim] = EmptyFib()
broken = audit_verifier(dpv, seed=0, witnesses=1, near_misses=1)
print(f"\nafter blanking {victim}'s FIB: {broken.summary()}")
print("first mismatch with its minimal hop trace:")
print(f"  {broken.mismatches[0].describe()}")
assert not broken.ok
