#!/usr/bin/env python3
"""Auditing a hyper-scale-DCN-style network — the paper's §2.3 scenario.

The synthesized DCN reproduces the operational hazards the paper
motivates S2 with: per-layer ASNs (so AS paths repeat across clusters),
AS_PATH-overwrite policies at the fabric, route aggregation with
community tagging, community filtering at the border, heterogeneous ECMP,
and a mix of two vendor dialects.

This audit:

1. verifies the intended invariants on the healthy network
   (TOR-to-TOR reachability across clusters; aggregation containment;
   management filtered at the border; the conditional default present);
2. simulates an *upstream outage*: the external prefix disappears, and
   conditional advertisement correctly withdraws the default route from
   the whole DC — while the internal mesh stays fully reachable;
3. then *plants the paper's motivating misconfiguration during that
   outage window* — an operator "cleans up" the fabric's
   AS_PATH-overwrite policy.  With the default gone there is no longer a
   path that masks the mistake: since layers share ASNs across clusters,
   descending routes are dropped as AS-path loops, and S2 catches the
   cross-cluster blackout before deployment.

Run:  python examples/dcn_audit.py
"""

from repro import Prefix, Query, S2Options, S2Verifier
from repro.net import dcn


def tor_pairs_reachable(verifier, tors):
    checker = verifier.checker()
    result = checker.check_reachability(
        Query(sources=tuple(tors), destinations=tuple(tors))
    )
    pairs = set(result.pairs())
    return sum(1 for s in tors for d in tors if (s, d) in pairs)


def audit(snapshot, label):
    print(f"=== {label} ===")
    options = S2Options(num_workers=4, num_shards=8)
    with S2Verifier(snapshot, options) as verifier:
        verifier.run_control_plane()
        ribs = verifier.collected_ribs()
        tors = sorted(
            n for n in snapshot.configs
            if snapshot.topology.node(n).role == "tor"
        )
        total = tor_pairs_reachable(verifier, tors)
        print(f"TOR-to-TOR reachability: {total}/{len(tors) ** 2} pairs")

        # invariant: the aggregating cluster's specifics never leave it
        leak = Prefix.parse("10.3.0.0/24")
        leaked = [
            host
            for host, table in ribs.items()
            if leak in table
            and snapshot.topology.node(host).cluster != 3
        ]
        print(f"cluster-3 specifics leaked outside: {len(leaked)} devices")

        # invariant: management aggregates are filtered at the border
        mgmt = Prefix.parse("172.16.3.0/24")
        print(f"border bb-1 carries management aggregate: {mgmt in ribs['bb-1']}"
              f" (policy says it must not)")

        # the conditional default's presence tracks the external prefix
        default = Prefix.parse("0.0.0.0/0")
        with_default = sum(1 for t in tors if default in ribs[t])
        print(f"TORs holding the conditional default: "
              f"{with_default}/{len(tors)}")
        return total, len(tors) ** 2


def upstream_outage(snapshot):
    """The external circuit goes down: bb-0 no longer holds 8.8.8.0/24,
    so its conditional advertisement of 0.0.0.0/0 must deactivate."""
    border = snapshot.configs["bb-0"]
    border.bgp.networks = [
        p for p in border.bgp.networks if p != dcn.EXTERNAL_PREFIX
    ]
    return snapshot


def break_fabric_overwrite(snapshot):
    """The planted incident: an operator 'cleans up' the fabric's
    EXPORT-DOWN route map, removing the AS_PATH overwrite (§2.3).

    Without it, a route that descends into another cluster still carries
    the first cluster's layer ASNs — and since layers share ASNs across
    clusters, the receiving switches drop it as an AS-path loop."""
    for hostname, config in snapshot.configs.items():
        if not hostname.startswith("fab-"):
            continue
        export_down = config.route_maps.get("EXPORT-DOWN")
        if export_down is not None:
            for clause in export_down.clauses:
                clause.sets = []  # the overwrite is gone
    return snapshot


def main():
    healthy, total_pairs = audit(dcn.build_dcn(scale=1), "healthy network")

    print()
    outage_only, _ = audit(
        upstream_outage(dcn.build_dcn(scale=1)),
        "upstream outage (default correctly withdrawn)",
    )

    print()
    broken_snapshot = break_fabric_overwrite(
        upstream_outage(dcn.build_dcn(scale=1))
    )
    broken, _ = audit(
        broken_snapshot,
        "upstream outage + fabric AS_PATH overwrite removed",
    )

    assert outage_only == healthy, (
        "the outage alone must not hurt the internal mesh"
    )
    lost = healthy - broken
    print(f"\nS2 verdict: with the default withdrawn, the cleanup breaks "
          f"{lost} TOR-to-TOR pairs ({lost / total_pairs:.0%} of the mesh) "
          f"— change rejected before deployment.")
    assert lost > 0, "the planted misconfiguration must be detected"


if __name__ == "__main__":
    main()
