#!/usr/bin/env python3
"""Figure 11 rendered: distributed forwarding steps on FatTree4.

Reproduces the paper's illustration: checking reachability from one edge
switch to an edge switch in a *different pod* triggers symbolic packet
forwarding on every worker — the packet copies at the core layer to
explore all equal-cost paths, and each pod boundary crossed is a
sidecar-serialized BDD transfer.

Run:  python examples/fig11_forwarding_trace.py
"""

from repro.dataplane.forwarding import FinalState
from repro.dist.controller import S2Controller, S2Options
from repro.net.fattree import build_fattree
from repro.net.ip import Prefix

SOURCE = "edge-0-0"
DESTINATION = "edge-3-1"
PREFIX = Prefix.parse("10.3.1.0/24")


def main():
    snapshot = build_fattree(4)
    # the expert scheme puts each pod on its own worker, like the figure
    options = S2Options(
        num_workers=4, partition_scheme="expert", num_shards=2
    )
    with S2Controller(snapshot, options) as controller:
        controller.run_control_plane()
        controller.build_data_plane()
        assignment = controller.partition.assignment

        print(f"checking reachability {SOURCE} -> {DESTINATION} ({PREFIX})")
        print("worker assignment (expert scheme: one pod per worker):")
        for worker_id in range(4):
            members = sorted(
                n for n, w in assignment.items() if w == worker_id
            )
            print(f"  worker{worker_id}: {', '.join(members)}")

        dpo = controller.dpo
        header = options.encoding.prefix_bdd(dpo.engine, PREFIX)
        finals = dpo.forward([SOURCE], header, trace=True)

        arrived = sorted(
            f.path
            for f in finals
            if f.state is FinalState.ARRIVE and f.node == DESTINATION
        )
        print(f"\n{len(arrived)} forwarding paths found:")
        step = 0
        for path in arrived:
            rendered = []
            for a, b in zip(path, path[1:]):
                step += 1
                crossing = assignment[a] != assignment[b]
                marker = f" ={step}=> " if crossing else f" -{step}-> "
                rendered.append(f"{a}{marker}")
            print("  " + "".join(rendered) + path[-1])
        print("\n(=N=> steps cross workers: the BDD is serialized by the "
              "sending sidecar and re-encoded by the receiving worker)")
        print(f"cross-worker symbolic packets: "
              f"{dpo.stats.packets_crossed}, supersteps: "
              f"{dpo.stats.supersteps}")

        workers_touched = {
            assignment[node] for f in finals for node in (f.path or ())
        }
        print(f"workers engaged by this single-pair check: "
              f"{sorted(workers_touched)} — all of them, as §5.8 observes")


if __name__ == "__main__":
    main()
