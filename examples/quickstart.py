#!/usr/bin/env python3
"""Quickstart: verify a synthesized FatTree with S2 in ~20 lines.

Builds a 4-pod FatTree (20 switches, eBGP everywhere, ECMP), partitions
it across 4 workers, runs the distributed control-plane simulation with
prefix sharding, then checks all-pair reachability on the distributed
data plane.

Run:  python examples/quickstart.py
"""

from repro import Prefix, Query, S2Options, S2Verifier
from repro.net.fattree import build_fattree

snapshot = build_fattree(4)
print(f"synthesized {snapshot.name}: {len(snapshot)} switches, "
      f"{len(list(snapshot.topology.links()))} links")

options = S2Options(num_workers=4, num_shards=4, partition_scheme="metis")
with S2Verifier(snapshot, options) as verifier:
    result = verifier.verify()
    print(result.summary())

    # the distributed RIBs are available for inspection
    ribs = verifier.collected_ribs()
    remote = Prefix.parse("10.3.1.0/24")
    paths = ribs["edge-0-0"][remote]
    print(f"\nedge-0-0 -> {remote}: {len(paths)} ECMP paths")
    for route in paths:
        print(f"  {route.describe()}")

    # ask a targeted question: can edge-0-0 reach edge-3-1's subnet?
    answer = verifier.checker().check_reachability(
        Query.single_pair("edge-0-0", "edge-3-1", remote)
    )
    print(f"\nsingle-pair reachability holds: "
          f"{answer.holds('edge-0-0', 'edge-3-1')}")

    report = verifier.controller.report()
    print(f"\nper-worker peak memory: {report.peak_worker_bytes / 1e6:.1f} MB "
          f"(modeled), cross-worker traffic: "
          f"{report.total_rpc_bytes / 1e3:.0f} KB in "
          f"{report.total_rpc_messages} messages")
