#!/usr/bin/env python3
"""What-if: which single link failures break reachability?

The analysis-based verifiers of the paper's §6.2 answer link-failure
questions through abstraction (trading faithfulness); here the same
question is answered by honest re-simulation with S2 — remove each link,
recompute the control plane, re-verify, diff against the baseline.

The FatTree is ECMP-protected: every single-link failure is safe.  The
interesting part is what happens when the design margin is consumed — we
pre-fail one aggregation uplink and sweep again, exposing the links whose
*additional* failure would now partition traffic.

Run:  python examples/link_failure_sweep.py
"""

from repro.core.analysis import LinkFailureAnalyzer, without_link
from repro.dist.controller import S2Options
from repro.net.fattree import build_fattree


def sweep(snapshot, label, sample=10):
    print(f"=== {label} ===")
    analyzer = LinkFailureAnalyzer(
        snapshot, options=S2Options(num_workers=2)
    )
    links = list(snapshot.topology.links())[:sample]
    reports = analyzer.sweep(links)
    safe = sum(1 for r in reports if r.is_safe)
    print(f"baseline: {len(analyzer.baseline)} reachable pairs; "
          f"{safe}/{len(reports)} sampled links are safe to lose")
    for report in reports:
        if not report.is_safe:
            sample_pairs = ", ".join(
                f"{s}->{d}" for s, d in report.lost_pairs[:3]
            )
            more = (
                f" (+{len(report.lost_pairs) - 3} more)"
                if len(report.lost_pairs) > 3
                else ""
            )
            print(f"  FRAGILE {report.link}: loses {sample_pairs}{more}")
    print()
    return reports


def main():
    healthy = build_fattree(4)
    reports = sweep(healthy, "healthy FatTree4 (ECMP everywhere)")
    assert all(r.is_safe for r in reports)

    # consume the redundancy: edge-0-0 loses its uplink to agg-0-0, so
    # its remaining uplink (to agg-0-1) becomes a single point of failure
    degraded = without_link(
        healthy, healthy.topology.link_between("edge-0-0", "agg-0-0")
    )
    second = healthy.topology.link_between("edge-0-0", "agg-0-1")
    analyzer = LinkFailureAnalyzer(
        degraded, options=S2Options(num_workers=2)
    )
    print("=== degraded: edge-0-0 already lost its agg-0-0 uplink ===")
    report = analyzer.analyze_link(
        degraded.topology.link_between("edge-0-0", "agg-0-1")
    )
    print(f"failing the remaining uplink {report.link}: {report.status}, "
          f"{len(report.lost_pairs)} pairs lost")
    assert not report.is_safe
    print("\nS2 verdict: after the first failure, edge-0-0's remaining "
          "uplink is a single point of failure — fix before maintenance.")


if __name__ == "__main__":
    main()
