#!/usr/bin/env python3
"""What-if: which single link failures break reachability?

The analysis-based verifiers of the paper's §6.2 answer link-failure
questions through abstraction (trading faithfulness); here the same
question is answered by honest re-simulation with S2 — remove each link,
recompute the control plane, re-verify, diff against the baseline.

The FatTree is ECMP-protected: every single-link failure is safe.  The
interesting part is what happens when the design margin is consumed — we
pre-fail one aggregation uplink and sweep again, exposing the links whose
*additional* failure would now partition traffic.

The final act runs the same what-if against a resident
:class:`~repro.serve.VerifierSession`: the worker fleet boots once, each
failure is a link *delta* (down, verify, up), and the sweep early-exits
the moment a delta reports lost pairs — the counterexample, without
paying a cold start per hypothesis.

Run:  python examples/link_failure_sweep.py
"""

from repro.config.loader import snapshot_from_texts
from repro.core.analysis import LinkFailureAnalyzer, without_link
from repro.dist.controller import S2Options
from repro.net.fattree import FatTreeSpec, build_fattree, render_configs
from repro.serve import LinkDelta, VerifierSession


def sweep(snapshot, label, sample=10):
    print(f"=== {label} ===")
    analyzer = LinkFailureAnalyzer(
        snapshot, options=S2Options(num_workers=2)
    )
    links = list(snapshot.topology.links())[:sample]
    reports = analyzer.sweep(links)
    safe = sum(1 for r in reports if r.is_safe)
    print(f"baseline: {len(analyzer.baseline)} reachable pairs; "
          f"{safe}/{len(reports)} sampled links are safe to lose")
    for report in reports:
        if not report.is_safe:
            sample_pairs = ", ".join(
                f"{s}->{d}" for s, d in report.lost_pairs[:3]
            )
            more = (
                f" (+{len(report.lost_pairs) - 3} more)"
                if len(report.lost_pairs) > 3
                else ""
            )
            print(f"  FRAGILE {report.link}: loses {sample_pairs}{more}")
    print()
    return reports


def resident_sweep(session, links):
    """Fail each link as a delta on the live session; stop at the first
    counterexample.  Every 'up' delta restores the committed baseline
    before the next hypothesis, so the sweep never compounds failures."""
    for link in links:
        a, b = link.a.node, link.b.node
        down = session.apply_delta(LinkDelta(a=a, b=b), timeout=300)
        if down.lost_pairs:
            sample_pairs = ", ".join(
                f"{s}->{d}" for s, d in down.lost_pairs[:3]
            )
            print(
                f"  counterexample at epoch {down.epoch}: {a}~{b} "
                f"loses {sample_pairs}"
            )
            return link, down.lost_pairs
        print(
            f"  epoch {down.epoch}: {a}~{b} down, "
            f"{down.reachable_pairs} pairs still reachable — safe"
        )
        session.apply_delta(LinkDelta(a=a, b=b, up=True), timeout=300)
    return None, ()


def main():
    healthy = build_fattree(4)
    reports = sweep(healthy, "healthy FatTree4 (ECMP everywhere)")
    assert all(r.is_safe for r in reports)

    # consume the redundancy: edge-0-0 loses its uplink to agg-0-0, so
    # its remaining uplink (to agg-0-1) becomes a single point of failure
    degraded = without_link(
        healthy, healthy.topology.link_between("edge-0-0", "agg-0-0")
    )
    second = healthy.topology.link_between("edge-0-0", "agg-0-1")
    analyzer = LinkFailureAnalyzer(
        degraded, options=S2Options(num_workers=2)
    )
    print("=== degraded: edge-0-0 already lost its agg-0-0 uplink ===")
    report = analyzer.analyze_link(
        degraded.topology.link_between("edge-0-0", "agg-0-1")
    )
    print(f"failing the remaining uplink {report.link}: {report.status}, "
          f"{len(report.lost_pairs)} pairs lost")
    assert not report.is_safe
    print("\nS2 verdict: after the first failure, edge-0-0's remaining "
          "uplink is a single point of failure — fix before maintenance.")

    # The same question, asked of a resident verifier: one fleet, one
    # boot, each hypothesis a delta on the live session.
    print("\n=== resident verifier: the sweep as link deltas ===")
    texts = render_configs(FatTreeSpec(k=4))
    snapshot = snapshot_from_texts(texts, name="ft4")
    with VerifierSession(
        snapshot, S2Options(num_workers=2, num_shards=4)
    ) as session:
        topology = session.snapshot.topology
        # Consume the margin first (a delta too), then sweep the links
        # that now matter; the second hypothesis is the counterexample.
        session.apply_delta(
            LinkDelta(a="edge-0-0", b="agg-0-0"), timeout=300
        )
        candidates = [
            topology.link_between("edge-1-0", "agg-1-0"),
            topology.link_between("edge-0-0", "agg-0-1"),
            topology.link_between("edge-1-1", "agg-1-1"),
        ]
        fragile, lost = resident_sweep(session, candidates)
        assert fragile is not None, "the sweep should find the SPOF"
        assert fragile.a.node == "edge-0-0"
        print(
            f"resident sweep verdict: {fragile.a.node}~{fragile.b.node} "
            f"is the single point of failure ({len(lost)} pairs lost); "
            f"found after {session.epoch} epochs without a cold start"
        )


if __name__ == "__main__":
    main()
