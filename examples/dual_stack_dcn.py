#!/usr/bin/env python3
"""Dual-stack verification: the paper's IPv6 future work, implemented.

The paper's DCN carries more IPv6 routes than IPv4 (§2.3: O(3x10^8) v6 vs
O(2x10^8) v4), yet the paper's S2 supports only IPv4 and lists IPv6 as
future work (§7).  This reproduction implements it: prefixes carry their
family, FIBs keep one LPM trie per family, and verification runs one pass
per family — each with its own header encoding (32- or 128-bit dst field),
so v6 state never bloats v4 BDDs.

The scenario: the dual-stack DCN, verified for both families with the
*same* distributed pipeline; then a v6-only misconfiguration (a cluster
top's v6 aggregate is removed while v4 keeps working) that only the v6
pass can catch — the reason dual-stack networks must verify both planes.

Run:  python examples/dual_stack_dcn.py
"""

from repro.bdd.headerspace import HeaderEncoding
from repro.dataplane.queries import Query
from repro.dist.controller import S2Controller, S2Options
from repro.net.dcn import build_dcn, vlan6_prefix, vlan_prefix
from repro.net.ip import Prefix


def tor_names(snapshot):
    return sorted(
        n for n in snapshot.configs
        if snapshot.topology.node(n).role == "tor"
    )


def intended_prefix(snapshot, tor: str, address_bits: int) -> Prefix:
    """The prefix the design *intends* the TOR to serve — the audit
    checks the plan, not whatever survived a broken rollout."""
    node = snapshot.topology.node(tor)
    index = int(tor.rsplit("-", 1)[1])
    if address_bits == 128:
        return vlan6_prefix(node.cluster, index)
    return vlan_prefix(node.cluster, index)


def family_pass(snapshot, address_bits, label):
    """One verification pass for one address family."""
    options = S2Options(
        num_workers=4,
        num_shards=8,
        encoding=HeaderEncoding(fields=("dst",), address_bits=address_bits),
    )
    tors = tor_names(snapshot)
    with S2Controller(snapshot, options) as controller:
        checker = controller.checker()
        reachable = 0
        checked = 0
        for src in tors:
            for dst in tors:
                if src == dst:
                    continue
                checked += 1
                result = checker.check_reachability(
                    Query(
                        sources=(src,),
                        destinations=(dst,),
                        header_space=intended_prefix(
                            snapshot, dst, address_bits
                        ),
                    )
                )
                if result.holds(src, dst):
                    reachable += 1
        print(f"{label}: {reachable}/{checked} TOR pairs reachable")
        return reachable, checked


def main():
    print("=== healthy dual-stack DCN ===")
    snapshot = build_dcn(scale=1, ipv6=True)
    v4_ok, v4_total = family_pass(snapshot, 32, "IPv4 pass")
    v6_ok, v6_total = family_pass(snapshot, 128, "IPv6 pass")
    assert v4_ok == v4_total and v6_ok == v6_total

    print("\n=== v6-only incident: cluster-3 TORs stop announcing v6 ===")
    # A template rollout breaks the v6 VLAN interface stanza on cluster
    # 3's TORs: their /64 originations disappear.  IPv4 is untouched.
    # Bonus cascade: with no contributors left, the cluster tops' /48
    # aggregate must deactivate (§4.5's contributor rule).
    broken = build_dcn(scale=1, ipv6=True)
    removed = 0
    for hostname, config in broken.configs.items():
        if config.bgp is None:
            continue
        if broken.topology.node(hostname).cluster != 3:
            continue
        before = len(config.bgp.networks)
        config.bgp.networks = [
            p for p in config.bgp.networks if not p.is_ipv6
        ]
        removed += before - len(config.bgp.networks)
    print(f"(removed {removed} v6 originations; the /48 aggregate at the "
          f"cluster tops now has no contributors and must deactivate)")

    v4_ok, v4_total = family_pass(broken, 32, "IPv4 pass")
    v6_ok, v6_total = family_pass(broken, 128, "IPv6 pass")
    assert v4_ok == v4_total, "v4 must be unaffected"
    assert v6_ok < v6_total, "the v6 pass must catch the regression"
    print(f"\nS2 verdict: IPv4 is clean but {v6_total - v6_ok} IPv6 TOR "
          f"pairs broke — a v4-only verifier (the paper's scope) would "
          f"have shipped this change.")


if __name__ == "__main__":
    main()
